//! The long-lived disambiguation server: per-core epoll reactors, each
//! owning an `SO_REUSEPORT` acceptor shard, and graceful shutdown.
//!
//! Each reactor (see [`crate::reactor`]) multiplexes its shard's
//! connections off readiness events, so thousands of keep-alive
//! connections cost memory, not threads. Connections beyond a reactor's
//! live cap ([`ServiceConfig::queue_depth`]) are answered `503`
//! immediately instead of piling up. Shutdown — via [`Server::shutdown`]
//! or `POST /v1/shutdown` — wakes every reactor through its eventfd; each
//! stops accepting, flushes in-flight responses, and closes idle
//! connections.
//!
//! Lock poisoning is recovered, never propagated: a panicking request
//! handler is caught and answered `500`, and any mutex it poisoned on the
//! way down is re-entered by taking the inner value (safe here because
//! the WAL protocol is append-consistent — a torn logical update is
//! impossible, the lock only orders appends).

use crate::api::{
    error_body, AnswerView, BatchCompleteRequest, BatchCompleteResponse, BatchItemView,
    CompleteRequest, CompleteResponse, CompletionView, DataDeleteResponse, DataPutRequest,
    DataPutResponse, QueryRequest, QueryResponse, SchemaDeleteResponse, SchemaPutResponse,
};
use crate::cache::{config_fingerprint, entry_weight, CacheKey, CachePartitions};
use crate::data::DataRegistry;
use crate::epoll::Wake;
use crate::http::Request;
use crate::reactor::{reactor_loop, ReactorConfig};
use crate::registry::SchemaRegistry;
use crate::repl::{FollowerStatus, StreamStart};
use ipe_core::{
    complete_batch, BatchOptions, CompleteError, Completer, CompletionConfig, SearchLimits,
    SearchOutcome, SearchStats,
};
use ipe_index::{IndexMode, IndexedSchema};
use ipe_obs::{CompletedRequest, FlightConfig, FlightRecorder, RequestTrace, SpanHandle};
use ipe_oodb::EvalLimits;
use ipe_parser::{parse_path_expression, PathExprAst};
use ipe_query::{evaluate_completions, Answer, QueryError};
use ipe_repl::ReplHub;
use ipe_schema::Schema;
use ipe_store::{
    read_sidecar, read_warmup, remove_sidecar, sidecar_path, write_sidecar, write_warmup,
    FsyncPolicy, Store, StoreConfig, WalOp, WalRecord, WarmupEntry,
};
use ipe_tenant::{
    scoped_name, split_scoped, Admission, Tenant, TenantConfig, TenantError, TenantRegistry,
    DEFAULT_TENANT,
};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning by taking the inner value.
///
/// Safe for every mutex in this crate: they guard append-ordered or
/// idempotent state (the WAL store serializes appends, the warmup tracker
/// holds advisory counters, the builder list holds join handles), so a
/// panic mid-critical-section cannot leave a torn logical update behind.
/// Before this existed, one panicking worker poisoned the store mutex and
/// every later durable request died on `.expect("store poisoned")`.
pub(crate) fn lock_recover<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        ipe_obs::counter!("service.lock.poison_recovered", 1);
        eprintln!("ipe-service: recovered poisoned {what} lock");
        poisoned.into_inner()
    })
}

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Reactor threads, each owning an `SO_REUSEPORT` acceptor shard and
    /// an epoll loop multiplexing that shard's connections. `0` means one
    /// per available core.
    pub reactors: usize,
    /// Live connections one reactor will hold; beyond it new connections
    /// on that shard get an immediate `503` (the backpressure valve).
    pub queue_depth: usize,
    /// Budget for one request (first byte to framed request — a deadline,
    /// not a per-read timeout, so drip-fed requests are bounded too);
    /// also the idle keep-alive reap interval and the shutdown drain
    /// deadline. Expiry mid-request answers `408`.
    pub request_timeout: Duration,
    /// Completion cache size in entries.
    pub cache_capacity: usize,
    /// Completion cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Byte budget of each tenant's completion-cache partition when the
    /// tenant does not set its own `cache_bytes` (0 = no byte budget;
    /// the entry capacity still bounds the partition).
    pub cache_bytes: u64,
    /// Default worker threads for `POST /v1/complete/batch` (a request's
    /// `threads` field overrides per batch).
    pub batch_threads: usize,
    /// Data directory for the durable schema store. `None` (the default)
    /// keeps the registry purely in memory, as before PR 4.
    pub data_dir: Option<PathBuf>,
    /// WAL flush policy when `data_dir` is set.
    pub fsync: FsyncPolicy,
    /// WAL appends between snapshot compactions (0 = snapshot only on
    /// clean shutdown).
    pub snapshot_every: u64,
    /// How many hot cache keys the warmup journal keeps (0 disables
    /// warmup tracking and replay).
    pub warmup_top_k: usize,
    /// Search-index policy. `On` builds every schema's index (all goal
    /// tables eagerly) in the background after a PUT and at recovery;
    /// `Lazy` builds the closure matrices in the background but grows
    /// goal tables on first use; `Off` disables indexing entirely.
    /// Completions issued while a build is still running are served
    /// unindexed — a PUT never waits for indexing.
    pub index_mode: IndexMode,
    /// Artificial delay inserted before each background index build.
    /// Testing knob: widens the build window so the build-in-progress
    /// fallback path can be exercised deterministically. Zero in
    /// production.
    pub index_build_delay_ms: u64,
    /// Head sampling for request tracing: record a span tree for 1 in N
    /// requests (1 = every request, 0 = tracing off). An unsampled
    /// request pays one atomic check and nothing else.
    pub trace_sample_n: u64,
    /// Flight-recorder recent ring: how many completed request traces to
    /// retain.
    pub flight_capacity: usize,
    /// Flight recorder: size of the always-keep slowest-requests
    /// reservoir.
    pub flight_keep_slowest: usize,
    /// Flight recorder: size of the always-keep errored-requests ring.
    pub flight_keep_errors: usize,
    /// Requests whose handler wall time reaches this many milliseconds
    /// are flagged slow and force-retained in the flight recorder
    /// (0 disables the threshold).
    pub slow_ms: u64,
    /// Emit one structured JSON access-log line per request to stderr.
    pub access_log: bool,
    /// Cap on a `PUT /v1/data/:schema` load: explicit spec entries, or
    /// projected objects of a `gen` request. Beyond it the load is a
    /// `413`.
    pub max_data_entries: usize,
    /// Default wall-clock budget for `POST /v1/query`, in milliseconds
    /// (a request's `deadline_ms` overrides, capped at 60 000).
    pub query_deadline_ms: u64,
    /// Testing knob: expose `POST /v1/debug/panic`, which panics while
    /// holding the store and builder locks — the worst case for lock
    /// poisoning. Exists so the poison-recovery path is provable end to
    /// end; always `false` in production.
    pub debug_panic_route: bool,
    /// Run as a read-only follower of the leader at this `host:port`:
    /// tail its replication stream, apply schema mutations locally, and
    /// answer schema writes `421` with the leader's address. `None` (the
    /// default) runs as a standalone server / replication leader.
    pub follow: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7474".to_owned(),
            reactors: 0,
            queue_depth: 256,
            request_timeout: Duration::from_secs(10),
            cache_capacity: 4096,
            cache_shards: 16,
            cache_bytes: 0,
            batch_threads: 4,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
            warmup_top_k: 64,
            index_mode: IndexMode::On,
            index_build_delay_ms: 0,
            trace_sample_n: 1,
            flight_capacity: 256,
            flight_keep_slowest: 16,
            flight_keep_errors: 32,
            slow_ms: 500,
            access_log: false,
            max_data_entries: 500_000,
            query_deadline_ms: 2_000,
            debug_panic_route: false,
            follow: None,
        }
    }
}

/// Resolves [`ServiceConfig::reactors`]: `0` means one per core.
fn reactor_count(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Tenant-config sidecar file name inside the data directory.
pub const TENANTS_FILE: &str = "tenants.json";

/// Cap on distinct keys the warmup tracker counts; hotter keys win, new
/// keys arriving at capacity are dropped (sampling, not precision).
const WARMUP_TRACK_CAP: usize = 4096;
/// Per-query deadline when replaying the warmup journal at startup, so a
/// pathological journal cannot stall boot.
const WARMUP_REPLAY_DEADLINE: Duration = Duration::from_secs(2);

/// Best-effort frequency counter over `(schema name, normalized query)`
/// pairs, feeding the warmup journal. Recording uses `try_lock`: under
/// contention a sample is simply dropped — warmth is advisory.
pub struct WarmupTracker {
    inner: Mutex<HashMap<(String, String), u64>>,
}

impl WarmupTracker {
    fn new() -> WarmupTracker {
        WarmupTracker {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Counts one lookup of `query` against `schema` (sampled).
    pub fn record(&self, schema: &str, query: &str) {
        // `try_lock` must distinguish contention (drop the sample) from
        // poisoning (recover the map): treating both as "skip" would turn
        // one panic into a permanently frozen warmup journal.
        let mut map = match self.inner.try_lock() {
            Ok(map) => map,
            Err(TryLockError::Poisoned(poisoned)) => {
                ipe_obs::counter!("service.lock.poison_recovered", 1);
                poisoned.into_inner()
            }
            Err(TryLockError::WouldBlock) => return,
        };
        let key = (schema.to_owned(), query.to_owned());
        if let Some(n) = map.get_mut(&key) {
            *n += 1;
        } else if map.len() < WARMUP_TRACK_CAP {
            map.insert(key, 1);
        }
    }

    /// The hottest `k` keys, descending.
    pub fn top_k(&self, k: usize) -> Vec<WarmupEntry> {
        let map = lock_recover(&self.inner, "warmup tracker");
        let mut entries: Vec<WarmupEntry> = map
            .iter()
            .map(|((schema, query), hits)| WarmupEntry {
                schema: schema.clone(),
                query: query.clone(),
                hits: *hits,
            })
            .collect();
        entries.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.query.cmp(&b.query)));
        entries.truncate(k);
        entries
    }
}

/// Hard cap on `queries` per batch request; more is a `400`.
const MAX_BATCH_ITEMS: usize = 256;
/// Per-item deadline applied when a batch request does not set one.
const DEFAULT_BATCH_DEADLINE_MS: u64 = 2_000;
/// Upper bound on a requested per-item deadline.
const MAX_BATCH_DEADLINE_MS: u64 = 60_000;
/// Upper bound on a requested batch thread count.
const MAX_BATCH_THREADS: u64 = 16;
/// Upper bound on a requested query deadline.
const MAX_QUERY_DEADLINE_MS: u64 = 60_000;

/// Shared state of a running server: registry, cache, and gauges.
pub struct ServiceState {
    /// The schema registry. Keys are tenant-scoped: the `default`
    /// tenant owns bare names, every other tenant's schemas live under
    /// `"{tenant}/{name}"` (see [`ipe_tenant::scoped_name`]).
    pub registry: SchemaRegistry,
    /// Per-tenant completion-cache partitions; the `default` tenant's
    /// partition serves the legacy un-prefixed routes. Partition byte
    /// budgets come from each tenant's `cache_bytes`.
    pub caches: CachePartitions,
    /// Tenant namespaces: admission quotas, cache budgets, and the
    /// per-tenant request defaults (`PUT /v1/tenants/:tenant`).
    pub tenants: TenantRegistry,
    /// Loaded data instances, per schema name (`PUT /v1/data/:schema`).
    pub data: DataRegistry,
    /// The durable store (`Some` when the server runs with a data
    /// directory). The mutex also serializes registry mutations with
    /// their WAL appends, so the log order always matches the registry's
    /// generation order.
    pub(crate) store: Option<Mutex<Store>>,
    /// Leader-side replication fan-out (`Some` iff durable and not a
    /// follower). Appends publish to it while still holding the store
    /// mutex, so subscribers see records in exact WAL order.
    pub(crate) repl_hub: Option<Arc<ReplHub>>,
    /// Follower progress (`Some` iff [`ServiceConfig::follow`] was set).
    pub(crate) follower: Option<Arc<FollowerStatus>>,
    /// Replication streams currently being served to followers.
    pub(crate) repl_streams_active: AtomicU64,
    /// Live replication threads (the follower apply loop, leader stream
    /// writers), joined on shutdown.
    pub(crate) repl_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Hot-key tracker feeding the warmup journal (only with a store).
    warmup: Option<WarmupTracker>,
    warmup_top_k: usize,
    /// Reactor threads actually running (the `workers` metrics gauge
    /// keeps its wire name across the rearchitecture).
    workers: AtomicU64,
    batch_threads: usize,
    /// Live connections across all reactors (the `queue_depth` metrics
    /// gauge keeps its wire name).
    live_conns: AtomicU64,
    requests_total: AtomicU64,
    rejected_total: AtomicU64,
    shutdown: AtomicBool,
    /// One eventfd per reactor; `request_shutdown` fires them all so a
    /// reactor blocked in `epoll_wait` observes the flag immediately.
    wakers: Mutex<Vec<Arc<Wake>>>,
    bound_addr: OnceLock<SocketAddr>,
    /// Index policy (see [`ServiceConfig::index_mode`]).
    index_mode: IndexMode,
    index_build_delay_ms: u64,
    /// Sidecar directory; `Some` iff the server is durable.
    pub(crate) data_dir: Option<PathBuf>,
    index_builds_completed: AtomicU64,
    index_builds_in_flight: AtomicU64,
    index_sidecar_loads: AtomicU64,
    completes_indexed: AtomicU64,
    completes_unindexed: AtomicU64,
    /// Live background index-build threads, joined on shutdown so a
    /// build's sidecar write never races the final snapshot.
    index_builders: Mutex<Vec<JoinHandle<()>>>,
    /// The flight recorder of completed request traces (see
    /// `GET /v1/debug/requests`).
    pub flight: FlightRecorder,
    slow_ms: u64,
    access_log: bool,
    max_data_entries: usize,
    query_deadline_ms: u64,
    debug_panic_route: bool,
}

impl ServiceState {
    fn new(config: &ServiceConfig, store: Option<Store>) -> ServiceState {
        let track_warmup = store.is_some() && config.warmup_top_k > 0;
        // Only a durable non-follower can lead: the stream protocol
        // resumes from the on-disk WAL, and a follower republishing the
        // leader's records would invert the topology.
        let repl_hub = match (&store, &config.follow) {
            (Some(store), None) => Some(Arc::new(ReplHub::new(store.last_seq()))),
            _ => None,
        };
        ServiceState {
            registry: SchemaRegistry::new(),
            caches: CachePartitions::new(
                config.cache_capacity,
                config.cache_shards,
                config.cache_bytes,
            ),
            tenants: TenantRegistry::new(TenantConfig::default()),
            data: DataRegistry::new(),
            store: store.map(Mutex::new),
            repl_hub,
            follower: config
                .follow
                .clone()
                .map(|leader| Arc::new(FollowerStatus::new(leader))),
            repl_streams_active: AtomicU64::new(0),
            repl_threads: Mutex::new(Vec::new()),
            warmup: track_warmup.then(WarmupTracker::new),
            warmup_top_k: config.warmup_top_k,
            workers: AtomicU64::new(reactor_count(config.reactors) as u64),
            batch_threads: config.batch_threads.clamp(1, MAX_BATCH_THREADS as usize),
            live_conns: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            wakers: Mutex::new(Vec::new()),
            bound_addr: OnceLock::new(),
            index_mode: config.index_mode,
            index_build_delay_ms: config.index_build_delay_ms,
            data_dir: config.data_dir.clone(),
            index_builds_completed: AtomicU64::new(0),
            index_builds_in_flight: AtomicU64::new(0),
            index_sidecar_loads: AtomicU64::new(0),
            completes_indexed: AtomicU64::new(0),
            completes_unindexed: AtomicU64::new(0),
            index_builders: Mutex::new(Vec::new()),
            flight: FlightRecorder::new(FlightConfig {
                capacity: config.flight_capacity,
                shards: 8,
                keep_slowest: config.flight_keep_slowest,
                keep_errors: config.flight_keep_errors,
                sample_n: config.trace_sample_n,
            }),
            slow_ms: config.slow_ms,
            access_log: config.access_log,
            max_data_entries: config.max_data_entries,
            query_deadline_ms: config.query_deadline_ms,
            debug_panic_route: config.debug_panic_route,
        }
    }

    /// One connection accepted by a reactor (the `queue_depth` gauge).
    pub(crate) fn conn_opened(&self) {
        self.live_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection closed by a reactor.
    pub(crate) fn conn_closed(&self) {
        self.live_conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// One connection answered `503` at the reactor's live cap.
    pub(crate) fn count_rejected(&self) {
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether this server persists its registry.
    pub fn durable(&self) -> bool {
        self.store.is_some()
    }

    /// Writes the warmup journal from the tracker's current top-K.
    /// Best-effort: failures are counted, never propagated.
    fn flush_warmup(&self) {
        let (Some(store), Some(warmup)) = (&self.store, &self.warmup) else {
            return;
        };
        let entries = warmup.top_k(self.warmup_top_k);
        let path = lock_recover(store, "store").warmup_path();
        if write_warmup(&path, &entries).is_err() {
            ipe_obs::counter!("store.warmup.write_failed", 1);
        }
    }

    /// Inserts (or hot-swaps) a schema under the `default` tenant. See
    /// [`ServiceState::register_schema_for`].
    pub fn register_schema(
        &self,
        name: &str,
        schema: Schema,
        json: &str,
    ) -> std::io::Result<Arc<crate::SchemaEntry>> {
        self.register_schema_for(DEFAULT_TENANT, name, schema, json)
    }

    /// Inserts (or hot-swaps) a tenant's schema and writes the mutation
    /// through to the WAL when the server is durable; a no-op append when
    /// it is not. `name` is the tenant-local (bare) name — the registry
    /// key is tenant-scoped, the WAL record carries the tenant id. `json`
    /// is the schema's serialized form as recorded in the log. The store
    /// lock is taken *before* the registry write so concurrent mutations
    /// hit the WAL in generation order. On a persistence failure the
    /// registry keeps the new generation (it is live in memory) but the
    /// error is returned so callers can refuse to acknowledge the write
    /// as durable.
    pub fn register_schema_for(
        &self,
        tenant: &str,
        name: &str,
        schema: Schema,
        json: &str,
    ) -> std::io::Result<Arc<crate::SchemaEntry>> {
        let key = scoped_name(tenant, name);
        let store_guard = self.store.as_ref().map(|m| lock_recover(m, "store"));
        let entry = self.registry.insert(&key, schema);
        if let Some(mut store) = store_guard {
            match store.append_put(tenant, name, entry.id, entry.generation, json) {
                Ok(appended) => {
                    // Published while still holding the store mutex, so
                    // followers observe records in exact WAL order and a
                    // concurrent stream handshake (which subscribes under
                    // this same mutex) can neither miss nor duplicate it.
                    if let Some(hub) = &self.repl_hub {
                        hub.publish(&WalRecord {
                            seq: appended.seq,
                            op: WalOp::Put {
                                tenant: tenant.to_owned(),
                                name: name.to_owned(),
                                id: entry.id,
                                generation: entry.generation,
                                schema_json: json.to_owned(),
                            },
                        });
                    }
                    drop(store);
                    if appended.snapshotted {
                        self.flush_warmup();
                    }
                }
                Err(e) => {
                    ipe_obs::counter!("store.wal.append_failed", 1);
                    return Err(std::io::Error::other(e));
                }
            }
        }
        Ok(entry)
    }

    /// Path of the tenant-config sidecar inside the data directory.
    fn tenants_path(&self) -> Option<PathBuf> {
        self.data_dir.as_ref().map(|dir| dir.join(TENANTS_FILE))
    }

    /// Persists every tenant's config as `tenants.json` (temp file +
    /// rename) so namespaces and quotas survive restarts. Best-effort on
    /// a durable server, a no-op otherwise: quota state is config, not
    /// data — losing it degrades to default quotas, never to data loss.
    pub(crate) fn persist_tenants(&self) {
        let Some(path) = self.tenants_path() else {
            return;
        };
        let map: BTreeMap<String, TenantConfig> = self
            .tenants
            .list()
            .iter()
            .map(|t| (t.name().to_owned(), t.config()))
            .collect();
        let json = match serde_json::to_string(&map) {
            Ok(json) => json,
            Err(_) => return,
        };
        let tmp = path.with_extension("json.tmp");
        let written =
            std::fs::write(&tmp, json.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
        if written.is_err() {
            ipe_obs::counter!("service.tenant.persist_failed", 1);
        }
    }

    /// Loads `tenants.json` (if present) into the tenant registry and
    /// sizes each tenant's cache partition. Unknown or corrupt files are
    /// skipped: tenants degrade to defaults rather than blocking boot.
    fn load_tenants(&self) {
        let Some(path) = self.tenants_path() else {
            return;
        };
        let Ok(bytes) = std::fs::read_to_string(&path) else {
            return;
        };
        let Ok(map) = serde_json::from_str::<BTreeMap<String, TenantConfig>>(&bytes) else {
            ipe_obs::counter!("service.tenant.load_failed", 1);
            eprintln!("ipe-service: ignoring corrupt {TENANTS_FILE}");
            return;
        };
        for (name, config) in map {
            let budget = config.cache_bytes;
            if self.tenants.put(&name, config).is_ok() {
                self.caches.ensure(&name, budget);
            }
        }
    }

    /// Accounts one engine-backed completion (a cache miss) as indexed or
    /// not, for `/metrics`.
    fn count_complete(&self, indexed: bool) {
        if indexed {
            self.completes_indexed.fetch_add(1, Ordering::Relaxed);
            ipe_obs::counter!("service.complete.indexed", 1);
        } else {
            self.completes_unindexed.fetch_add(1, Ordering::Relaxed);
            ipe_obs::counter!("service.complete.unindexed", 1);
        }
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes every reactor so ones blocked in
    /// `epoll_wait` observe the flag and start draining.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the hub ends every leader stream thread at its next
        // queue pop, so the drain can join them.
        if let Some(hub) = &self.repl_hub {
            hub.close();
        }
        for wake in lock_recover(&self.wakers, "wakers").iter() {
            wake.wake();
        }
    }

    /// Gauges for `/metrics`.
    fn metrics_view(&self) -> ServiceMetrics {
        ServiceMetrics {
            cache: self.caches.stats(),
            tenants: self.tenant_metrics(),
            queue_depth: self.live_conns.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            schemas: self.registry.list().len() as u64,
            data_sets: self.data.len() as u64,
            durable: self.store.is_some(),
            wal_last_seq: self
                .store
                .as_ref()
                .map(|s| lock_recover(s, "store").last_seq())
                .unwrap_or(0),
            index: IndexMetrics {
                mode: self.index_mode.as_str().to_owned(),
                builds_completed: self.index_builds_completed.load(Ordering::SeqCst),
                builds_in_flight: self.index_builds_in_flight.load(Ordering::SeqCst),
                sidecar_loads: self.index_sidecar_loads.load(Ordering::SeqCst),
                completes_indexed: self.completes_indexed.load(Ordering::Relaxed),
                completes_unindexed: self.completes_unindexed.load(Ordering::Relaxed),
            },
            repl: self.repl_metrics(),
        }
    }

    /// Per-tenant rows for `/metrics`: admission counters, in-flight
    /// searches, and the tenant's cache-partition footprint.
    fn tenant_metrics(&self) -> Vec<TenantMetricsRow> {
        self.tenants
            .list()
            .iter()
            .map(|t| {
                let partition = self.caches.partition(t.name());
                let counters = t.counters();
                TenantMetricsRow {
                    tenant: t.name().to_owned(),
                    in_flight: u64::from(t.in_flight()),
                    admitted: counters.admitted,
                    throttled: counters.throttled,
                    busy: counters.busy,
                    searches: counters.searches,
                    cache: partition.stats(),
                    cache_budget_bytes: partition.byte_budget(),
                }
            })
            .collect()
    }

    /// The `service.repl` gauge section, shared by `/metrics` and
    /// `/v1/repl/status`.
    fn repl_metrics(&self) -> ReplMetrics {
        match (&self.follower, &self.repl_hub) {
            (Some(f), _) => ReplMetrics {
                role: "follower".to_owned(),
                leader: Some(f.leader.clone()),
                leader_seq: f.leader_seq(),
                applied_seq: f.applied_seq(),
                lag_seq: f.lag_seq(),
                lag_ms: f.lag_ms(),
                connected: f.connected(),
                ready: f.is_ready(),
                streams_active: 0,
                reconnects: f.reconnects(),
                records_applied: f.records_applied(),
                snapshots_installed: f.snapshots_installed(),
            },
            (None, Some(hub)) => ReplMetrics {
                role: "leader".to_owned(),
                leader: None,
                leader_seq: hub.last_seq(),
                applied_seq: hub.last_seq(),
                lag_seq: 0,
                lag_ms: 0,
                connected: true,
                ready: !self.shutting_down(),
                streams_active: self.repl_streams_active.load(Ordering::SeqCst),
                reconnects: 0,
                records_applied: 0,
                snapshots_installed: 0,
            },
            (None, None) => ReplMetrics {
                role: "none".to_owned(),
                leader: None,
                leader_seq: 0,
                applied_seq: 0,
                lag_seq: 0,
                lag_ms: 0,
                connected: false,
                ready: !self.shutting_down(),
                streams_active: 0,
                reconnects: 0,
                records_applied: 0,
                snapshots_installed: 0,
            },
        }
    }
}

/// Spawns a background thread that builds `entry`'s search index, installs
/// it on the entry, and persists it as a store sidecar. Requests arriving
/// while the build runs are served unindexed. A no-op with
/// [`IndexMode::Off`].
pub(crate) fn spawn_index_build(state: &Arc<ServiceState>, entry: Arc<crate::SchemaEntry>) {
    if state.index_mode == IndexMode::Off {
        return;
    }
    state.index_builds_in_flight.fetch_add(1, Ordering::SeqCst);
    let st = Arc::clone(state);
    let spawn = std::thread::Builder::new()
        .name(format!("ipe-index-{}", entry.id))
        .spawn(move || {
            if st.index_build_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(st.index_build_delay_ms));
            }
            let index = {
                let _t = ipe_obs::timer!("service.index.build");
                Arc::new(IndexedSchema::build(&entry.schema, st.index_mode))
            };
            if entry.set_index(Arc::clone(&index)) {
                st.index_builds_completed.fetch_add(1, Ordering::SeqCst);
                ipe_obs::counter!("service.index.builds", 1);
                persist_index_sidecar(&st, &entry, &index);
            }
            st.index_builds_in_flight.fetch_sub(1, Ordering::SeqCst);
        });
    match spawn {
        Ok(handle) => lock_recover(&state.index_builders, "index builders").push(handle),
        Err(e) => {
            // Degrade to unindexed serving rather than failing the PUT.
            state.index_builds_in_flight.fetch_sub(1, Ordering::SeqCst);
            ipe_obs::counter!("service.index.spawn_failed", 1);
            eprintln!("ipe-service: failed to spawn index build: {e}");
        }
    }
}

/// Writes a built index as a sidecar next to the WAL — unless the entry
/// was hot-swapped while the build ran: the sidecar slot must only ever
/// hold the registry's *current* generation, because a restart validates
/// it against exactly that generation.
fn persist_index_sidecar(
    state: &Arc<ServiceState>,
    entry: &crate::SchemaEntry,
    index: &IndexedSchema,
) {
    let Some(dir) = &state.data_dir else {
        return;
    };
    let still_current = state
        .registry
        .get(&entry.name)
        .is_some_and(|c| c.id == entry.id && c.generation == entry.generation);
    if !still_current {
        return;
    }
    let payload = index.to_bytes(&entry.schema);
    if write_sidecar(
        &sidecar_path(dir, entry.id),
        entry.id,
        entry.generation,
        &payload,
    )
    .is_err()
    {
        ipe_obs::counter!("store.sidecar.write_failed", 1);
    }
}

/// One tenant's row in the `service.tenants` section of `GET /metrics`.
#[derive(Debug, serde::Serialize)]
struct TenantMetricsRow {
    tenant: String,
    /// Searches in flight right now (the concurrency-cap gauge).
    in_flight: u64,
    admitted: u64,
    throttled: u64,
    busy: u64,
    searches: u64,
    cache: crate::cache::CacheStats,
    cache_budget_bytes: u64,
}

/// The `service` section of `GET /metrics`.
#[derive(Debug, serde::Serialize)]
struct ServiceMetrics {
    cache: crate::cache::CacheStats,
    tenants: Vec<TenantMetricsRow>,
    queue_depth: u64,
    requests_total: u64,
    rejected_total: u64,
    workers: u64,
    schemas: u64,
    data_sets: u64,
    durable: bool,
    wal_last_seq: u64,
    index: IndexMetrics,
    repl: ReplMetrics,
}

/// The `service.repl` section of `GET /metrics` (also the body of
/// `GET /v1/repl/status`).
#[derive(Debug, serde::Serialize)]
struct ReplMetrics {
    /// `"none"`, `"leader"`, or `"follower"`.
    role: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    leader: Option<String>,
    leader_seq: u64,
    applied_seq: u64,
    lag_seq: u64,
    lag_ms: u64,
    connected: bool,
    ready: bool,
    streams_active: u64,
    reconnects: u64,
    records_applied: u64,
    snapshots_installed: u64,
}

/// The `service.index` section of `GET /metrics`.
#[derive(Debug, serde::Serialize)]
struct IndexMetrics {
    mode: String,
    builds_completed: u64,
    builds_in_flight: u64,
    sidecar_loads: u64,
    completes_indexed: u64,
    completes_unindexed: u64,
}

/// A running disambiguation server. Dropping the handle does **not** stop
/// the threads; call [`Server::shutdown`] (or hit `POST /v1/shutdown` and
/// [`Server::join`]).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    reactor_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds one `SO_REUSEPORT` listener shard per reactor on
    /// `config.addr`, recovers the durable store (when `data_dir` is set)
    /// into the registry, replays the warmup journal against the engine,
    /// and spawns the reactors. Returns once the sockets are listening
    /// and recovery is complete — a server that starts serving is never
    /// partially recovered.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let reactors = reactor_count(config.reactors);
        let requested =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::other(format!("`{}` resolves to no address", config.addr))
            })?;
        // The first shard resolves port 0; its siblings bind the resolved
        // port. All set SO_REUSEPORT before binding, so the kernel
        // load-balances incoming connections across them by 4-tuple hash.
        let first = crate::epoll::bind_reuseport(requested)?;
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(crate::epoll::bind_reuseport(addr)?);
        }
        let recovered = match &config.data_dir {
            None => None,
            Some(dir) => {
                let store_config = StoreConfig {
                    dir: dir.clone(),
                    fsync: config.fsync,
                    snapshot_every: config.snapshot_every,
                };
                let (store, recovery) =
                    Store::open(&store_config).map_err(|e| io::Error::other(e.to_string()))?;
                Some((store, recovery))
            }
        };
        let (store, recovery) = match recovered {
            Some((store, recovery)) => (Some(store), Some(recovery)),
            None => (None, None),
        };
        let state = Arc::new(ServiceState::new(&config, store));
        // Tenant configs load before schema recovery so each recovered
        // schema's cache partition already has its budget.
        state.load_tenants();
        if let Some(recovery) = recovery {
            for record in &recovery.schemas {
                let schema = Schema::from_json(&record.schema_json).map_err(|e| {
                    io::Error::other(format!(
                        "recovered schema `{}` does not parse: {e}",
                        record.name
                    ))
                })?;
                // Registry keys are tenant-scoped; a record whose tenant
                // no longer exists in tenants.json still recovers (the
                // WAL is authoritative for data, the sidecar only for
                // quotas) under default quotas.
                if record.tenant != DEFAULT_TENANT && state.tenants.get(&record.tenant).is_none() {
                    let _ = state.tenants.put(&record.tenant, TenantConfig::default());
                }
                let key = scoped_name(&record.tenant, &record.name);
                let entry = state
                    .registry
                    .restore(&key, record.id, record.generation, schema);
                // Prefer the persisted index sidecar; any mismatch
                // (missing, corrupt, stale generation) silently falls back
                // to a fresh background build.
                if state.index_mode != IndexMode::Off {
                    let loaded = config.data_dir.as_ref().and_then(|dir| {
                        let path = sidecar_path(dir, record.id);
                        let bytes = read_sidecar(&path, record.id, record.generation)?;
                        IndexedSchema::from_bytes(&bytes, &entry.schema).map(Arc::new)
                    });
                    let installed = loaded.map(|index| entry.set_index(index)).unwrap_or(false);
                    if installed {
                        state.index_sidecar_loads.fetch_add(1, Ordering::SeqCst);
                        ipe_obs::counter!("service.index.sidecar_loads", 1);
                    } else {
                        spawn_index_build(&state, entry);
                    }
                }
            }
            state.registry.reserve_ids(recovery.max_id);
            if let Some(follower) = &state.follower {
                // Resume the stream from what is already durable locally
                // instead of re-transferring from seq 0 on every boot —
                // the kill-and-catch-up path.
                follower.restore_applied(recovery.last_seq);
            }
            if recovery.truncated_tail {
                eprintln!(
                    "ipe-service: WAL tail was torn; recovered through seq {}",
                    recovery.last_seq
                );
            }
            if state.warmup.is_some() {
                let path = {
                    let store = state.store.as_ref().expect("recovery implies a store");
                    lock_recover(store, "store").warmup_path()
                };
                let entries = read_warmup(&path);
                let warmed = warm_cache(&state, &entries, config.warmup_top_k);
                ipe_obs::counter!("store.warmup.replayed", warmed);
            }
        }
        state
            .bound_addr
            .set(addr)
            .expect("bound_addr set exactly once");

        // A failed reactor spawn (thread exhaustion, ulimit) degrades the
        // fleet instead of killing the server: the failed shard's
        // listener drops here, leaving the SO_REUSEPORT group, so the
        // kernel stops hashing connections to an unowned queue. Zero
        // reactors is fatal — nothing would ever serve.
        let mut reactor_handles = Vec::with_capacity(reactors);
        let mut last_spawn_err: Option<io::Error> = None;
        for (i, listener) in listeners.into_iter().enumerate() {
            let wake = Arc::new(Wake::new()?);
            let st = Arc::clone(&state);
            let reactor_cfg = ReactorConfig {
                request_timeout: config.request_timeout,
                max_conns: config.queue_depth.max(1),
            };
            let thread_wake = Arc::clone(&wake);
            // Registered before the spawn so a shutdown racing startup
            // can never miss a live reactor's wake.
            lock_recover(&state.wakers, "wakers").push(wake);
            match std::thread::Builder::new()
                .name(format!("ipe-reactor-{i}"))
                .spawn(move || reactor_loop(listener, thread_wake, st, reactor_cfg))
            {
                Ok(handle) => reactor_handles.push(handle),
                Err(e) => {
                    lock_recover(&state.wakers, "wakers").pop();
                    ipe_obs::counter!("service.worker.spawn_failed", 1);
                    eprintln!("ipe-service: failed to spawn reactor {i}: {e}");
                    last_spawn_err = Some(e);
                }
            }
        }
        if reactor_handles.is_empty() {
            return Err(last_spawn_err
                .unwrap_or_else(|| io::Error::other("no reactor threads could be spawned")));
        }
        state
            .workers
            .store(reactor_handles.len() as u64, Ordering::Relaxed);
        if state.follower.is_some() {
            let st = Arc::clone(&state);
            match std::thread::Builder::new()
                .name("ipe-repl-follower".to_owned())
                .spawn(move || crate::repl::follower_loop(st))
            {
                Ok(handle) => lock_recover(&state.repl_threads, "repl threads").push(handle),
                Err(e) => {
                    // A follower that cannot apply must not serve: readers
                    // would see a frozen replica that still claims ready
                    // once caught up.
                    return Err(io::Error::other(format!(
                        "failed to spawn the follower apply thread: {e}"
                    )));
                }
            }
        }
        Ok(Server {
            addr,
            state,
            reactor_handles,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry/cache/gauge state.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Registers a schema exactly as `PUT /v1/schemas/:name` would:
    /// durable write-through (when configured) plus a background index
    /// build. Embedders seeding schemas directly should use this rather
    /// than [`ServiceState::register_schema`], which skips indexing.
    pub fn register_schema(
        &self,
        name: &str,
        schema: ipe_schema::Schema,
        json: &str,
    ) -> std::io::Result<Arc<crate::SchemaEntry>> {
        let entry = self.state.register_schema(name, schema, json)?;
        spawn_index_build(&self.state, Arc::clone(&entry));
        Ok(entry)
    }

    /// Blocks until the server has shut down (via [`Server::shutdown`]
    /// from another thread or `POST /v1/shutdown`) and every reactor has
    /// drained.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests shutdown and waits for all threads to finish.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        for h in self.reactor_handles.drain(..) {
            let _ = h.join();
        }
        // Replication threads observe the shutdown flag (and the closed
        // hub) within a heartbeat interval; joining them before the final
        // snapshot keeps stream reads and follower applies off it.
        let repl: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock_recover(&self.state.repl_threads, "repl threads"));
        for h in repl {
            let _ = h.join();
        }
        // Let in-flight index builds finish so their sidecar writes land
        // before the shutdown snapshot.
        let builders: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_recover(
            &self.state.index_builders,
            "index builders",
        ));
        for h in builders {
            let _ = h.join();
        }
        // Clean shutdown: compact once so the next boot replays a
        // snapshot instead of the whole WAL, and persist the hot keys.
        self.state.flush_warmup();
        if let Some(store) = &self.state.store {
            if let Err(e) = lock_recover(store, "store").snapshot_now() {
                eprintln!("ipe-service: shutdown snapshot failed: {e}");
            }
        }
    }
}

/// One routed response: status, body, and its content type (JSON for
/// everything except the Prometheus exposition).
pub(crate) struct Reply {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) content_type: &'static str,
    /// Extra response headers (e.g. `x-ipe-leader` on follower `421`s).
    pub(crate) headers: Vec<(&'static str, String)>,
    /// When set, the reactor writes a bare head (no `Content-Length`,
    /// `Connection: close`), detaches the socket from its epoll loop, and
    /// hands it to a replication streaming thread.
    pub(crate) stream: Option<StreamStart>,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: "application/json",
            headers: Vec::new(),
            stream: None,
        }
    }

    fn with_header(mut self, name: &'static str, value: String) -> Reply {
        self.headers.push((name, value));
        self
    }
}

/// [`handle_request`] behind a panic barrier: a panicking handler is
/// answered `500` and the poisoned locks it left behind are recovered by
/// the next `lock_recover`, so one bad request can no longer take the
/// server down with it. (`AssertUnwindSafe` is justified by exactly that
/// recovery story: every lock crossing this boundary is poison-recovered
/// and guards append-ordered or idempotent state.)
pub(crate) fn handle_request_catching(state: &Arc<ServiceState>, req: &Request) -> (Reply, String) {
    let caught =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_request(state, req)));
    match caught {
        Ok(result) => result,
        Err(_) => {
            ipe_obs::counter!("service.request.panicked", 1);
            let trace_id = match req
                .trace_id
                .as_deref()
                .filter(|id| ipe_obs::valid_trace_id(id))
            {
                Some(id) => id.to_owned(),
                None => ipe_obs::gen_trace_id(),
            };
            (
                Reply::json(500, error_body("internal error: request handler panicked")),
                trace_id,
            )
        }
    }
}

/// Per-request observability context handed down to the route handlers:
/// the span handle children are opened under, plus the fields the access
/// log reports. The handle is disabled for unsampled requests, making
/// every span operation a no-op.
struct ReqObs {
    span: SpanHandle,
    /// Whether the completion cache answered (`None` for routes that do
    /// not consult it).
    cache_hit: Option<bool>,
    /// Search node expansions performed by this request.
    expansions: u64,
    /// Search branches pruned by this request.
    prunes: u64,
}

impl ReqObs {
    /// Folds one search run's counters into the access-log totals.
    fn absorb_stats(&mut self, stats: &SearchStats) {
        self.expansions += stats.calls;
        self.prunes += stats.pruned_visited
            + stats.pruned_best_t
            + stats.pruned_best_u
            + stats.pruned_index_unreachable
            + stats.pruned_index_bound;
    }
}

/// Coarse route label for per-route timers, the flight recorder, and the
/// access log.
fn route_label(req: &Request) -> &'static str {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/complete") => "complete",
        ("POST", "/v1/complete/batch") => "batch",
        ("POST", "/v1/query") => "query",
        (_, p) if p.starts_with("/v1/schemas") => "schemas",
        (_, p) if p.starts_with("/v1/data") => "data",
        (_, p) if p.starts_with("/v1/tenants") => "tenants",
        ("GET", "/healthz") => "healthz",
        ("GET", "/readyz") => "readyz",
        (_, p) if p.starts_with("/v1/repl") => "repl",
        ("GET", "/metrics") => "metrics",
        ("GET", p) if p.starts_with("/v1/debug/requests") => "debug",
        ("POST", "/v1/shutdown") => "shutdown",
        _ => "other",
    }
}

/// Records one request's wall time into its route's timer, so the
/// Prometheus exposition derives p50/p95/p99 per route.
fn record_route_timer(route: &'static str, ns: u64) {
    use ipe_obs::Timer;
    static COMPLETE: Timer = Timer::new("service.route.complete");
    static BATCH: Timer = Timer::new("service.route.batch");
    static SCHEMAS: Timer = Timer::new("service.route.schemas");
    static DATA: Timer = Timer::new("service.route.data");
    static TENANTS: Timer = Timer::new("service.route.tenants");
    static QUERY: Timer = Timer::new("service.route.query");
    static HEALTHZ: Timer = Timer::new("service.route.healthz");
    static READYZ: Timer = Timer::new("service.route.readyz");
    static REPL: Timer = Timer::new("service.route.repl");
    static METRICS: Timer = Timer::new("service.route.metrics");
    static DEBUG: Timer = Timer::new("service.route.debug");
    static SHUTDOWN: Timer = Timer::new("service.route.shutdown");
    static OTHER: Timer = Timer::new("service.route.other");
    let timer = match route {
        "complete" => &COMPLETE,
        "batch" => &BATCH,
        "schemas" => &SCHEMAS,
        "data" => &DATA,
        "tenants" => &TENANTS,
        "query" => &QUERY,
        "healthz" => &HEALTHZ,
        "readyz" => &READYZ,
        "repl" => &REPL,
        "metrics" => &METRICS,
        "debug" => &DEBUG,
        "shutdown" => &SHUTDOWN,
        _ => &OTHER,
    };
    timer.record_ns(ns);
}

/// The full request lifecycle around [`route`]: trace-id extraction (or
/// generation), head sampling, the root `http` span, per-route timing,
/// flight-recorder retention, and the access log. Returns the reply and
/// the trace id to echo in the `x-ipe-trace-id` response header.
fn handle_request(state: &Arc<ServiceState>, req: &Request) -> (Reply, String) {
    let _t = ipe_obs::timer!("service.request");
    ipe_obs::counter!("service.requests", 1);
    state.requests_total.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    // Propagated ids are honoured only when header-and-JSON safe;
    // anything else gets a fresh id.
    let trace_id = match req
        .trace_id
        .as_deref()
        .filter(|id| ipe_obs::valid_trace_id(id))
    {
        Some(id) => id.to_owned(),
        None => ipe_obs::gen_trace_id(),
    };
    let sampled = state.flight.should_sample();
    let trace = sampled.then(|| RequestTrace::start(trace_id.clone(), 0));
    let mut obs = ReqObs {
        span: trace.as_ref().map(|t| t.root_handle()).unwrap_or_default(),
        cache_hit: None,
        expansions: 0,
        prunes: 0,
    };
    let mut http_span = obs.span.child("http");
    if obs.span.is_enabled() {
        // Guarded: the format allocates, and unsampled requests must pay
        // only the sampling check.
        http_span.note(&format!("{} {}", req.method, req.path));
    }
    obs.span = http_span.handle();
    // Tenant-scoped paths (`/v1/t/:tenant/...`) rewrite to their legacy
    // shape and route under that tenant; everything else is the built-in
    // `default` tenant — legacy clients never see a behavior change.
    let (reply, label) = match tenant_route(&req.path) {
        Err(reply) => (reply, route_label(req)),
        Ok((tenant_name, rewritten)) => {
            let effective = rewritten.map(|path| Request {
                method: req.method.clone(),
                path,
                query: req.query.clone(),
                params: req.params.clone(),
                trace_id: req.trace_id.clone(),
                keep_alive: req.keep_alive,
                body: req.body.clone(),
            });
            let req_eff = effective.as_ref().unwrap_or(req);
            let label = route_label(req_eff);
            match state.tenants.get(&tenant_name) {
                None => (
                    Reply::json(404, error_body(&format!("no tenant named `{tenant_name}`"))),
                    label,
                ),
                Some(tenant) => (route(state, req_eff, &tenant, &mut obs), label),
            }
        }
    };
    http_span.attr("status", reply.status as u64);
    http_span.finish();
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    record_route_timer(label, duration_ns);
    let error = reply.status >= 400;
    let slow = state.slow_ms > 0 && duration_ns >= state.slow_ms.saturating_mul(1_000_000);
    if sampled || error || slow {
        let (spans, dropped_spans) = match trace {
            Some(t) => {
                let done = t.finish();
                (done.spans, done.dropped)
            }
            None => (Vec::new(), 0),
        };
        state.flight.record(CompletedRequest {
            trace_id: trace_id.clone(),
            route: label,
            method: req.method.clone(),
            path: req.path.clone(),
            status: reply.status,
            duration_ns,
            error,
            slow,
            spans,
            dropped_spans,
            seq: 0,
        });
    }
    if state.access_log {
        eprintln!(
            "{}",
            access_log_line(&trace_id, label, req, reply.status, duration_ns, slow, &obs)
        );
    }
    (reply, trace_id)
}

/// One structured access-log line: trace id, route, status, duration,
/// cache outcome, and search effort, as a single JSON object.
fn access_log_line(
    trace_id: &str,
    route: &'static str,
    req: &Request,
    status: u16,
    duration_ns: u64,
    slow: bool,
    obs: &ReqObs,
) -> String {
    use std::fmt::Write as _;
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(224);
    let _ = write!(out, "{{\"ts_ms\": {ts_ms}, \"trace_id\": ");
    ipe_obs::json::push_str_literal(&mut out, trace_id);
    out.push_str(", \"route\": ");
    ipe_obs::json::push_str_literal(&mut out, route);
    out.push_str(", \"method\": ");
    ipe_obs::json::push_str_literal(&mut out, &req.method);
    out.push_str(", \"path\": ");
    ipe_obs::json::push_str_literal(&mut out, &req.path);
    let _ = write!(
        out,
        ", \"status\": {status}, \"duration_ns\": {duration_ns}"
    );
    match obs.cache_hit {
        Some(hit) => {
            let _ = write!(out, ", \"cache_hit\": {hit}");
        }
        None => out.push_str(", \"cache_hit\": null"),
    }
    let _ = write!(
        out,
        ", \"expansions\": {}, \"prunes\": {}, \"slow\": {slow}}}",
        obs.expansions, obs.prunes
    );
    out
}

/// Splits a tenant-scoped path (`/v1/t/:tenant/rest`) into the tenant
/// name and the legacy-equivalent path (`/v1/rest`). Un-prefixed paths
/// map to the built-in `default` tenant with no rewrite.
fn tenant_route(path: &str) -> Result<(String, Option<String>), Reply> {
    let Some(rest) = path.strip_prefix("/v1/t/") else {
        return Ok((DEFAULT_TENANT.to_owned(), None));
    };
    let Some((tenant, tail)) = rest.split_once('/') else {
        return Err(Reply::json(
            404,
            error_body("tenant-scoped paths look like /v1/t/:tenant/<route>"),
        ));
    };
    if let Err(e) = ipe_tenant::validate_tenant_name(tenant) {
        return Err(Reply::json(400, error_body(&e.to_string())));
    }
    Ok((tenant.to_owned(), Some(format!("/v1/{tail}"))))
}

/// Whether a (rewritten) path is a work route: subject to the tenant's
/// token-bucket request quota. Health, metrics, replication, debug, and
/// the tenant control plane are exempt — throttling a health check or a
/// scrape would blind the operator to the throttling itself.
fn is_work_route(path: &str) -> bool {
    path.starts_with("/v1/complete")
        || path.starts_with("/v1/query")
        || path.starts_with("/v1/schemas")
        || path.starts_with("/v1/data")
}

/// Dispatches one request under its tenant.
fn route(
    state: &Arc<ServiceState>,
    req: &Request,
    tenant: &Arc<Tenant>,
    obs: &mut ReqObs,
) -> Reply {
    // Tenant control plane first: never tenant-scoped, never admitted
    // against a quota (an operator must always be able to raise one).
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/tenants") => return handle_list_tenants(state),
        ("PUT", p) if p.starts_with("/v1/tenants/") => return handle_put_tenant(state, req),
        ("DELETE", p) if p.starts_with("/v1/tenants/") => return handle_delete_tenant(state, req),
        ("GET", p) if p.starts_with("/v1/tenants/") => return handle_get_tenant(state, req),
        _ => {}
    }
    // Admission control, before any parsing or search work: the rate
    // quota on every work route, then the concurrent-search cap on the
    // search bodies. The permit is RAII — held for the whole handler.
    if is_work_route(&req.path) {
        if let Admission::Throttled { retry_after_ms } = tenant.admit_request() {
            return throttled_reply(tenant.name(), "request rate quota exceeded", retry_after_ms);
        }
    }
    let search_route = matches!(
        (req.method.as_str(), req.path.as_str()),
        ("POST", "/v1/complete") | ("POST", "/v1/complete/batch") | ("POST", "/v1/query")
    );
    let _permit = if search_route {
        match tenant.begin_search() {
            Ok(permit) => Some(permit),
            Err(retry_after_ms) => {
                return throttled_reply(
                    tenant.name(),
                    "concurrent-search cap reached",
                    retry_after_ms,
                )
            }
        }
    } else {
        None
    };
    // A follower owns no part of the schema log: schema writes are
    // misdirected and the client is told where the leader lives. Data
    // loads (`/v1/data/*`) stay node-local — each replica serves queries
    // against its own loaded instance — so they are not redirected.
    if let Some(follower) = &state.follower {
        let schema_write =
            matches!(req.method.as_str(), "PUT" | "DELETE") && req.path.starts_with("/v1/schemas/");
        if schema_write {
            ipe_obs::counter!("repl.follower.writes_rejected", 1);
            return Reply::json(
                421,
                error_body(&format!(
                    "this node is a read-only follower; send schema writes for tenant `{}` to the leader at {}",
                    tenant.name(),
                    follower.leader
                )),
            )
            .with_header("x-ipe-leader", follower.leader.clone());
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/complete") => handle_complete(state, req, tenant, obs),
        ("POST", "/v1/complete/batch") => handle_batch(state, req, tenant, obs),
        ("GET", "/v1/schemas") => {
            // Only this tenant's namespace, with the scope prefix
            // stripped back off: names on the wire are tenant-local.
            let list: Vec<crate::registry::SchemaInfo> = state
                .registry
                .list()
                .into_iter()
                .filter(|info| split_scoped(&info.name).0 == tenant.name())
                .map(|mut info| {
                    info.name = split_scoped(&info.name).1.to_owned();
                    info
                })
                .collect();
            match serde_json::to_string(&list) {
                Ok(json) => Reply::json(200, format!("{{\"schemas\": {json}}}")),
                Err(e) => Reply::json(500, error_body(&e.to_string())),
            }
        }
        ("POST", "/v1/query") => handle_query(state, req, tenant, obs),
        ("PUT", path) if path.starts_with("/v1/data/") => handle_put_data(state, req, tenant, obs),
        ("GET", path) if path.starts_with("/v1/data/") => handle_get_data(state, req, tenant),
        ("DELETE", path) if path.starts_with("/v1/data/") => handle_delete_data(state, req, tenant),
        ("PUT", path) if path.starts_with("/v1/schemas/") => handle_put_schema(state, req, tenant),
        ("DELETE", path) if path.starts_with("/v1/schemas/") => {
            handle_delete_schema(state, req, tenant)
        }
        ("GET", path) if path.starts_with("/v1/schemas/") => handle_get_schema(state, req, tenant),
        ("GET", "/healthz") => Reply::json(200, "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/readyz") => handle_readyz(state),
        ("GET", "/v1/repl/stream") => handle_repl_stream(state, req),
        ("GET", "/v1/repl/status") => handle_repl_status(state),
        ("GET", "/metrics") => {
            if req.query_param("format") == Some("prometheus") {
                Reply {
                    status: 200,
                    body: metrics_prometheus(state),
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    headers: Vec::new(),
                    stream: None,
                }
            } else {
                Reply::json(200, metrics_json(state))
            }
        }
        ("GET", "/v1/debug/requests") => handle_debug_requests(state),
        ("GET", path) if path.starts_with("/v1/debug/requests/") => {
            handle_debug_request(state, path)
        }
        ("POST", "/v1/debug/panic") if state.debug_panic_route => handle_debug_panic(state),
        ("POST", "/v1/shutdown") => {
            // Flag only; the serving reactor flushes this response, then
            // observes the flag and wakes its siblings to drain.
            state.shutdown.store(true, Ordering::SeqCst);
            Reply::json(200, "{\"ok\": true}".to_owned())
        }
        _ => Reply::json(404, error_body("no such endpoint")),
    }
}

/// `POST /v1/debug/panic` (only with
/// [`ServiceConfig::debug_panic_route`]): panics while holding the store,
/// warmup, and builder locks — the exact failure mode that used to
/// cascade through `.expect("store poisoned")` and kill every later
/// request. The e2e poison-recovery test drives this route and then
/// proves the server still serves durable writes.
fn handle_debug_panic(state: &Arc<ServiceState>) -> Reply {
    let _store = state.store.as_ref().map(|m| lock_recover(m, "store"));
    let _warmup = state.warmup.as_ref().map(|w| w.inner.lock());
    let _builders = lock_recover(&state.index_builders, "index builders");
    panic!("injected panic (debug_panic_route)");
}

/// `GET /v1/debug/requests`: the flight recorder's retained-trace
/// summaries. Cleanly absent (404) when observability is compiled out.
fn handle_debug_requests(state: &Arc<ServiceState>) -> Reply {
    if ipe_obs::disabled() {
        return Reply::json(404, error_body("request tracing is compiled out (obs-off)"));
    }
    Reply::json(200, state.flight.dump_json())
}

/// `GET /v1/debug/requests/:trace_id`: one retained trace, spans and all.
fn handle_debug_request(state: &Arc<ServiceState>, path: &str) -> Reply {
    if ipe_obs::disabled() {
        return Reply::json(404, error_body("request tracing is compiled out (obs-off)"));
    }
    let id = &path["/v1/debug/requests/".len()..];
    if id.is_empty() || id.contains('/') {
        return Reply::json(400, error_body("trace id must be a single path segment"));
    }
    match state.flight.lookup(id) {
        Some(trace) => Reply::json(200, trace.to_json()),
        None => Reply::json(404, error_body(&format!("no retained trace `{id}`"))),
    }
}

/// `GET /readyz`: readiness, as distinct from `/healthz` liveness. A
/// draining node and a follower that is behind the leader are both alive
/// but must be rotated out of a load balancer; the `503` body carries the
/// lag so operators can see how far behind the replica is.
fn handle_readyz(state: &Arc<ServiceState>) -> Reply {
    if state.shutting_down() {
        return Reply::json(
            503,
            "{\"ready\": false, \"status\": \"draining\"}".to_owned(),
        );
    }
    let Some(follower) = &state.follower else {
        return Reply::json(
            200,
            "{\"ready\": true, \"status\": \"ready\", \"role\": \"leader\"}".to_owned(),
        );
    };
    if follower.is_ready() {
        Reply::json(
            200,
            format!(
                "{{\"ready\": true, \"status\": \"ready\", \"role\": \"follower\", \"applied_seq\": {}}}",
                follower.applied_seq()
            ),
        )
    } else {
        ipe_obs::counter!("repl.follower.not_ready", 1);
        Reply::json(
            503,
            format!(
                "{{\"ready\": false, \"status\": \"lagging\", \"role\": \"follower\", \
                 \"connected\": {}, \"applied_seq\": {}, \"lag_seq\": {}, \"lag_ms\": {}}}",
                follower.connected(),
                follower.applied_seq(),
                follower.lag_seq(),
                follower.lag_ms()
            ),
        )
    }
}

/// `GET /v1/repl/stream?from_seq=N`: opens a replication stream. The
/// reply carries no body; the [`StreamStart`] marker makes the reactor
/// detach the socket and hand it to a streaming thread (see
/// [`crate::repl`]).
fn handle_repl_stream(state: &Arc<ServiceState>, req: &Request) -> Reply {
    if let Some(follower) = &state.follower {
        return Reply::json(
            400,
            error_body(&format!(
                "this node is a follower; stream from the leader at {}",
                follower.leader
            )),
        )
        .with_header("x-ipe-leader", follower.leader.clone());
    }
    if state.repl_hub.is_none() {
        return Reply::json(
            400,
            error_body("replication requires a durable leader (start with --data-dir)"),
        );
    }
    if state.shutting_down() {
        return Reply::json(503, error_body("leader is draining"));
    }
    let from_seq = match req.query_param("from_seq").unwrap_or("0").parse::<u64>() {
        Ok(n) => n,
        Err(_) => return Reply::json(400, error_body("`from_seq` must be an unsigned integer")),
    };
    Reply {
        status: 200,
        body: String::new(),
        content_type: "application/octet-stream",
        headers: Vec::new(),
        stream: Some(StreamStart { from_seq }),
    }
}

/// `GET /v1/repl/status`: the replication gauge section on its own, for
/// scripts and tests that poll convergence without parsing `/metrics`.
fn handle_repl_status(state: &Arc<ServiceState>) -> Reply {
    match serde_json::to_string(&state.repl_metrics()) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Body of every `429`: the machine-readable retry envelope shared with
/// the replica `409` (see [`ReadRefused`]) — `retryable` says whether
/// this same node can eventually serve the request, `retry_after_ms` is
/// the server's backoff hint. Clients branch on the fields, not on
/// message text.
#[derive(serde::Serialize)]
struct ThrottleBody {
    error: String,
    retryable: bool,
    retry_after_ms: u64,
    tenant: String,
}

/// Renders a `429 Too Many Requests` with the unified retry envelope and
/// a `Retry-After` header (whole seconds, rounded up, at least 1).
fn throttled_reply(tenant: &str, what: &str, retry_after_ms: u64) -> Reply {
    let body = ThrottleBody {
        error: format!("tenant `{tenant}`: {what}"),
        retryable: true,
        retry_after_ms,
        tenant: tenant.to_owned(),
    };
    let reply = match serde_json::to_string(&body) {
        Ok(json) => Reply::json(429, json),
        Err(e) => return Reply::json(500, error_body(&e.to_string())),
    };
    reply.with_header(
        "retry-after",
        retry_after_ms.div_ceil(1000).max(1).to_string(),
    )
}

/// Maps a tenant-registry error onto its status.
fn tenant_error_reply(e: TenantError) -> Reply {
    let status = match e {
        TenantError::BadName(_) => 400,
        TenantError::Unknown => 404,
        TenantError::Immortal => 409,
    };
    Reply::json(status, error_body(&e.to_string()))
}

/// Extracts and validates the `:tenant` segment of a `/v1/tenants/:tenant`
/// path.
fn tenant_name_segment(path: &str) -> Result<&str, Reply> {
    let name = &path["/v1/tenants/".len()..];
    if name.is_empty() || name.contains('/') {
        return Err(Reply::json(
            400,
            error_body("tenant name must be a single path segment"),
        ));
    }
    Ok(name)
}

/// One tenant on the wire (`GET /v1/tenants`, `PUT /v1/tenants/:tenant`).
#[derive(serde::Serialize)]
struct TenantView {
    tenant: String,
    created: bool,
    config: TenantConfig,
    in_flight: u64,
    admitted: u64,
    throttled: u64,
    busy: u64,
    searches: u64,
}

fn tenant_view(tenant: &Arc<Tenant>, created: bool) -> TenantView {
    let counters = tenant.counters();
    TenantView {
        tenant: tenant.name().to_owned(),
        created,
        config: tenant.config(),
        in_flight: u64::from(tenant.in_flight()),
        admitted: counters.admitted,
        throttled: counters.throttled,
        busy: counters.busy,
        searches: counters.searches,
    }
}

/// `GET /v1/tenants`: every tenant, `default` included.
fn handle_list_tenants(state: &Arc<ServiceState>) -> Reply {
    let views: Vec<TenantView> = state
        .tenants
        .list()
        .iter()
        .map(|t| tenant_view(t, false))
        .collect();
    match serde_json::to_string(&views) {
        Ok(json) => Reply::json(200, format!("{{\"tenants\": {json}}}")),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// `GET /v1/tenants/:tenant`: one tenant's config and counters.
fn handle_get_tenant(state: &Arc<ServiceState>, req: &Request) -> Reply {
    let name = match tenant_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let Some(tenant) = state.tenants.get(name) else {
        return Reply::json(404, error_body(&format!("no tenant named `{name}`")));
    };
    match serde_json::to_string(&tenant_view(&tenant, false)) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// `PUT /v1/tenants/:tenant`: creates a tenant namespace, or reconfigures
/// an existing one in place (quota state and counters survive a
/// reconfigure). The body is a [`TenantConfig`]; an empty body means
/// default (unlimited) quotas. Reconfiguring `default` is allowed — that
/// is how legacy un-prefixed traffic gets quotas.
fn handle_put_tenant(state: &Arc<ServiceState>, req: &Request) -> Reply {
    let name = match tenant_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let config: TenantConfig = if body.trim().is_empty() {
        TenantConfig::default()
    } else {
        match serde_json::from_str(body) {
            Ok(c) => c,
            Err(e) => return Reply::json(400, error_body(&format!("bad tenant config: {e}"))),
        }
    };
    let cache_bytes = config.cache_bytes;
    let (tenant, created) = match state.tenants.put(name, config) {
        Ok(x) => x,
        Err(e) => return tenant_error_reply(e),
    };
    // The cache partition's byte budget follows the config — a shrink
    // evicts down to the new budget on the partition's next insert.
    state.caches.ensure(name, cache_bytes);
    state.persist_tenants();
    match serde_json::to_string(&tenant_view(&tenant, created)) {
        Ok(json) => Reply::json(if created { 201 } else { 200 }, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Counts reported by a tenant purge (`DELETE /v1/tenants/:tenant`).
#[derive(serde::Serialize)]
struct TenantDeleteResponse {
    tenant: String,
    purged_schemas: u64,
    purged_data: u64,
    purged_cache_entries: u64,
    purged_cache_bytes: u64,
    purged_sidecars: u64,
}

/// `DELETE /v1/tenants/:tenant`: removes the namespace and purges
/// everything it owned — registry entries (each with a WAL delete, so
/// followers converge), loaded data instances, index sidecars, and the
/// whole cache partition. The store lock is held across the sweep so a
/// racing PUT serializes against the purge instead of interleaving with
/// it. `default` is immortal (`409`).
fn handle_delete_tenant(state: &Arc<ServiceState>, req: &Request) -> Reply {
    let name = match tenant_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    // Remove the tenant first: new requests 404 while the purge runs
    // (in-flight ones hold their own Arc and drain naturally).
    if let Err(e) = state.tenants.remove(name) {
        return tenant_error_reply(e);
    }
    let owned: Vec<String> = state
        .registry
        .list()
        .into_iter()
        .filter(|info| split_scoped(&info.name).0 == name)
        .map(|info| info.name)
        .collect();
    let mut purged_schemas = 0u64;
    let mut purged_data = 0u64;
    let mut purged_sidecars = 0u64;
    let mut append_err: Option<String> = None;
    {
        let mut store_guard = state.store.as_ref().map(|m| lock_recover(m, "store"));
        for key in &owned {
            let Some(entry) = state.registry.remove(key) else {
                continue;
            };
            purged_schemas += 1;
            if state.data.remove(key).is_some() {
                purged_data += 1;
            }
            if let Some(dir) = &state.data_dir {
                if remove_sidecar(dir, entry.id).is_ok() {
                    purged_sidecars += 1;
                }
            }
            if let Some(store) = store_guard.as_mut() {
                let bare = split_scoped(key).1;
                match store.append_delete(name, bare) {
                    Ok(appended) => {
                        if let Some(hub) = &state.repl_hub {
                            hub.publish(&WalRecord {
                                seq: appended.seq,
                                op: WalOp::Delete {
                                    tenant: name.to_owned(),
                                    name: bare.to_owned(),
                                },
                            });
                        }
                    }
                    Err(e) => {
                        ipe_obs::counter!("store.wal.append_failed", 1);
                        append_err.get_or_insert_with(|| e.to_string());
                    }
                }
            }
        }
    }
    let (purged_cache_entries, purged_cache_bytes) = state.caches.drop_partition(name);
    state.persist_tenants();
    ipe_obs::counter!("service.tenant.deleted", 1);
    if let Some(e) = append_err {
        return Reply::json(
            500,
            error_body(&format!("tenant purged but deletes not persisted: {e}")),
        );
    }
    let response = TenantDeleteResponse {
        tenant: name.to_owned(),
        purged_schemas,
        purged_data,
        purged_cache_entries,
        purged_cache_bytes,
        purged_sidecars,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Body of a `409` from [`admit_read`].
#[derive(serde::Serialize)]
struct ReadRefused {
    error: String,
    /// Whether retrying against this same node can succeed (true on a
    /// lagging follower, false when the requested generation exists
    /// nowhere).
    retryable: bool,
    /// Backoff hint when `retryable` (same contract as the `429` body).
    #[serde(skip_serializing_if = "Option::is_none")]
    retry_after_ms: Option<u64>,
    schema: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    generation: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    min_generation: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    applied_seq: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    lag_seq: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    lag_ms: Option<u64>,
}

/// Generation-aware read admission. `None` admits the request. A reader
/// that pins `min_generation` (read-your-writes after a schema PUT on the
/// leader) never gets an older generation served silently: a follower
/// that hasn't applied it yet answers `409` with `retryable: true` and
/// its lag, and a caught-up node answers `409` with `retryable: false`
/// (the generation does not exist). A missing schema on a lagging
/// follower is also deferred — it may simply not have arrived yet — while
/// on a caught-up node it falls through to the ordinary `404`.
fn admit_read(
    state: &Arc<ServiceState>,
    name: &str,
    entry: Option<&Arc<crate::SchemaEntry>>,
    min_generation: Option<u64>,
) -> Option<Reply> {
    let generation = entry.map(|e| e.generation);
    let met = match (generation, min_generation) {
        (Some(_), None) => true,
        (Some(have), Some(want)) => have >= want,
        (None, _) => false,
    };
    if met {
        return None;
    }
    if let Some(follower) = &state.follower {
        if !follower.is_ready() {
            ipe_obs::counter!("repl.follower.reads_deferred", 1);
            let body = ReadRefused {
                error: "replica has not applied this schema generation yet; retry".to_owned(),
                retryable: true,
                // Lag-proportional hint, floored so clients never spin
                // and capped so they re-probe a recovering replica soon.
                retry_after_ms: Some(follower.lag_ms().clamp(25, 2_000)),
                schema: name.to_owned(),
                generation,
                min_generation,
                applied_seq: Some(follower.applied_seq()),
                lag_seq: Some(follower.lag_seq()),
                lag_ms: Some(follower.lag_ms()),
            };
            return Some(refusal_reply(&body));
        }
    }
    match (generation, min_generation) {
        (Some(have), Some(want)) if have < want => {
            let body = ReadRefused {
                error: format!(
                    "schema `{name}` is at generation {have}, below the requested min_generation {want}"
                ),
                retryable: false,
                retry_after_ms: None,
                schema: name.to_owned(),
                generation,
                min_generation,
                applied_seq: None,
                lag_seq: None,
                lag_ms: None,
            };
            Some(refusal_reply(&body))
        }
        // Caught up (or leader) and the schema simply isn't registered:
        // let the handler answer its ordinary 404.
        _ => None,
    }
}

fn refusal_reply(body: &ReadRefused) -> Reply {
    match serde_json::to_string(body) {
        Ok(json) => Reply::json(409, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

fn handle_complete(
    state: &Arc<ServiceState>,
    req: &Request,
    tenant: &Arc<Tenant>,
    obs: &mut ReqObs,
) -> Reply {
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let mut parsed: CompleteRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return Reply::json(400, error_body(&format!("bad request body: {e}"))),
    };
    let tcfg = tenant.config();
    if parsed.e.is_none() {
        parsed.e = tcfg.default_e;
    }
    if parsed.pruning.is_none() {
        parsed.pruning = tcfg.default_pruning.clone();
    }
    let started = Instant::now();
    let name = parsed.schema_name();
    let key_name = scoped_name(tenant.name(), name);
    let mut lookup_span = obs.span.child("registry.lookup");
    lookup_span.note(&key_name);
    let entry = state.registry.get(&key_name);
    lookup_span.attr("found", entry.is_some() as u64);
    lookup_span.finish();
    if let Some(refused) = admit_read(state, name, entry.as_ref(), parsed.min_generation) {
        return refused;
    }
    let Some(entry) = entry else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    let cache = state.caches.partition(tenant.name());
    let mut parse_span = obs.span.child("parse");
    parse_span.note(&parsed.query);
    let ast = match parse_path_expression(&parsed.query) {
        Ok(ast) => ast,
        Err(e) => return Reply::json(400, error_body(&e.to_string())),
    };
    parse_span.finish();
    let cfg = match parsed.config(&entry.schema) {
        Ok(cfg) => cfg,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    let normalized = ast.to_string();
    let key = CacheKey {
        schema_id: entry.id,
        generation: entry.generation,
        query: normalized.clone(),
        fingerprint: config_fingerprint(&cfg),
    };
    let mut probe_span = obs.span.child("cache.probe");
    let probe = cache.get(&key);
    probe_span.attr("hit", probe.is_some() as u64);
    probe_span.finish();
    let (outcome, cached) = match probe {
        Some(hit) => (hit, true),
        None => {
            let mut engine = Completer::with_config(&entry.schema, cfg);
            let indexed = entry
                .index()
                .map(|ix| engine.attach_index(ix))
                .unwrap_or(false);
            state.count_complete(indexed);
            let mut search_span = obs.span.child("search");
            search_span.attr("indexed", indexed as u64);
            let limits = SearchLimits {
                span: search_span.handle(),
                ..SearchLimits::default()
            };
            match engine.complete_bounded(&ast, &limits) {
                Ok(outcome) => {
                    search_span.attr("calls", outcome.stats.calls);
                    search_span.finish();
                    obs.absorb_stats(&outcome.stats);
                    let weight = entry_weight(&key, &outcome);
                    let outcome = Arc::new(outcome);
                    cache.insert_weighted(key, Arc::clone(&outcome), weight);
                    (outcome, false)
                }
                Err(e) => return Reply::json(422, error_body(&e.to_string())),
            }
        }
    };
    obs.cache_hit = Some(cached);
    if let Some(warmup) = &state.warmup {
        warmup.record(&entry.name, &normalized);
    }
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let response = CompleteResponse {
        schema: split_scoped(&entry.name).1.to_owned(),
        generation: entry.generation,
        query: normalized,
        cached,
        duration_ns,
        completions: completion_views(&entry.schema, &outcome),
        stats: outcome.stats,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Renders a search outcome's completions into wire form.
fn completion_views(schema: &Schema, outcome: &SearchOutcome) -> Vec<CompletionView> {
    outcome
        .completions
        .iter()
        .map(|c| CompletionView {
            text: c.display(schema).to_string(),
            connector: c.label.connector.to_string(),
            semlen: c.label.semlen as u64,
            edges: c.edges.len() as u64,
        })
        .collect()
}

fn handle_batch(
    state: &Arc<ServiceState>,
    req: &Request,
    tenant: &Arc<Tenant>,
    obs: &mut ReqObs,
) -> Reply {
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let mut parsed: BatchCompleteRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return Reply::json(400, error_body(&format!("bad request body: {e}"))),
    };
    if parsed.queries.len() > MAX_BATCH_ITEMS {
        return Reply::json(
            400,
            error_body(&format!(
                "batch of {} queries exceeds the cap of {MAX_BATCH_ITEMS}",
                parsed.queries.len()
            )),
        );
    }
    let tcfg = tenant.config();
    if parsed.e.is_none() {
        parsed.e = tcfg.default_e;
    }
    if parsed.pruning.is_none() {
        parsed.pruning = tcfg.default_pruning.clone();
    }
    let started = Instant::now();
    let name = parsed.schema_name();
    let key_name = scoped_name(tenant.name(), name);
    let entry = state.registry.get(&key_name);
    if let Some(refused) = admit_read(state, name, entry.as_ref(), parsed.min_generation) {
        return refused;
    }
    let Some(entry) = entry else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    let cache = state.caches.partition(tenant.name());
    let cfg = match parsed.config(&entry.schema) {
        Ok(cfg) => cfg,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    let deadline_ms = parsed
        .deadline_ms
        .or(tcfg.deadline_ms)
        .unwrap_or(DEFAULT_BATCH_DEADLINE_MS)
        .min(MAX_BATCH_DEADLINE_MS);
    let threads = parsed
        .threads
        .unwrap_or(state.batch_threads as u64)
        .clamp(1, MAX_BATCH_THREADS) as usize;
    let fingerprint = config_fingerprint(&cfg);

    // First pass: parse and probe the cache per item. Parse failures and
    // cache hits resolve immediately; misses collect into one parallel
    // engine batch.
    let mut prepare_span = obs.span.child("batch.prepare");
    prepare_span.attr("items", parsed.queries.len() as u64);
    let mut views: Vec<Option<BatchItemView>> = (0..parsed.queries.len()).map(|_| None).collect();
    let mut miss_slots: Vec<usize> = Vec::new();
    let mut miss_keys: Vec<CacheKey> = Vec::new();
    let mut miss_asts: Vec<PathExprAst> = Vec::new();
    for (i, query) in parsed.queries.iter().enumerate() {
        match parse_path_expression(query) {
            Err(e) => {
                views[i] = Some(BatchItemView {
                    query: query.clone(),
                    status: "error".to_owned(),
                    cached: false,
                    duration_ns: 0,
                    error: Some(e.to_string()),
                    completions: Vec::new(),
                });
            }
            Ok(ast) => {
                let normalized = ast.to_string();
                let key = CacheKey {
                    schema_id: entry.id,
                    generation: entry.generation,
                    query: normalized.clone(),
                    fingerprint,
                };
                if let Some(hit) = cache.get(&key) {
                    views[i] = Some(BatchItemView {
                        query: normalized,
                        status: "ok".to_owned(),
                        cached: true,
                        duration_ns: 0,
                        error: None,
                        completions: completion_views(&entry.schema, &hit),
                    });
                } else {
                    miss_slots.push(i);
                    miss_keys.push(key);
                    miss_asts.push(ast);
                }
            }
        }
    }

    let resolved = views.iter().filter(|v| v.is_some()).count();
    prepare_span.attr("resolved", resolved as u64);
    prepare_span.attr("misses", miss_asts.len() as u64);
    prepare_span.finish();

    // Second pass: the misses, fanned over the batch work pool. Only `ok`
    // results enter the cache — a deadline hit is a property of this
    // run's budget, not of the query.
    let mut deadline_hits = 0u64;
    if !miss_asts.is_empty() {
        let mut fanout_span = obs.span.child("batch");
        fanout_span.attr("misses", miss_asts.len() as u64);
        fanout_span.attr("threads", threads as u64);
        let opts = BatchOptions {
            threads,
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            cancel: None,
            span: fanout_span.handle(),
        };
        let mut engine = Completer::with_config(&entry.schema, cfg);
        let indexed = entry
            .index()
            .map(|ix| engine.attach_index(ix))
            .unwrap_or(false);
        state.count_complete(indexed);
        let out = complete_batch(&engine, &miss_asts, &opts);
        fanout_span.finish();
        for item in out {
            let slot = miss_slots[item.index];
            let key = miss_keys[item.index].clone();
            let normalized = key.query.clone();
            views[slot] = Some(match item.result {
                Ok(outcome) => {
                    obs.absorb_stats(&outcome.stats);
                    let completions = completion_views(&entry.schema, &outcome);
                    let weight = entry_weight(&key, &outcome);
                    cache.insert_weighted(key, Arc::new(outcome), weight);
                    BatchItemView {
                        query: normalized,
                        status: "ok".to_owned(),
                        cached: false,
                        duration_ns: item.duration_ns,
                        error: None,
                        completions,
                    }
                }
                Err(e) => {
                    let status = if matches!(e, CompleteError::DeadlineExceeded) {
                        deadline_hits += 1;
                        "deadline_exceeded"
                    } else {
                        "error"
                    };
                    BatchItemView {
                        query: normalized,
                        status: status.to_owned(),
                        cached: false,
                        duration_ns: item.duration_ns,
                        error: Some(e.to_string()),
                        completions: Vec::new(),
                    }
                }
            });
        }
    }

    let response = BatchCompleteResponse {
        schema: split_scoped(&entry.name).1.to_owned(),
        generation: entry.generation,
        deadline_ms,
        threads: threads as u64,
        wall_ns: started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        deadline_hits,
        items: views
            .into_iter()
            .map(|v| v.expect("every batch slot resolved"))
            .collect(),
    };
    // The batch as a whole "hit" only when every query resolved from
    // cache (no fan-out ran).
    obs.cache_hit = Some(response.items.iter().all(|v| v.cached));
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Extracts and validates the `:name` segment of a `/v1/schemas/:name`
/// path.
fn schema_name_segment(path: &str) -> Result<&str, Reply> {
    let name = &path["/v1/schemas/".len()..];
    if name.is_empty() || name.contains('/') {
        return Err(Reply::json(
            400,
            error_body("schema name must be a single path segment"),
        ));
    }
    Ok(name)
}

fn handle_put_schema(state: &Arc<ServiceState>, req: &Request, tenant: &Arc<Tenant>) -> Reply {
    let name = match schema_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let schema = match Schema::from_json(body) {
        Ok(s) => s,
        Err(e) => return Reply::json(400, error_body(&format!("invalid schema: {e}"))),
    };
    let entry = match state.register_schema_for(tenant.name(), name, schema, body) {
        Ok(entry) => entry,
        Err(e) => {
            return Reply::json(
                500,
                error_body(&format!("schema registered but not persisted: {e}")),
            )
        }
    };
    // Generation keying already shields correctness; purging just frees
    // the dead generations' memory eagerly.
    let purged = if entry.generation > 1 {
        state.caches.purge_schema(tenant.name(), entry.id)
    } else {
        0
    };
    // Kick off the index build for the new generation; until it lands the
    // entry serves unindexed.
    spawn_index_build(state, Arc::clone(&entry));
    let response = SchemaPutResponse {
        name: split_scoped(&entry.name).1.to_owned(),
        id: entry.id,
        generation: entry.generation,
        purged_cache_entries: purged,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

fn handle_delete_schema(state: &Arc<ServiceState>, req: &Request, tenant: &Arc<Tenant>) -> Reply {
    let name = match schema_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let key_name = scoped_name(tenant.name(), name);
    let store_guard = state.store.as_ref().map(|m| lock_recover(m, "store"));
    let Some(entry) = state.registry.remove(&key_name) else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    // Purge before acknowledging so a deleted schema's cached results are
    // unreachable the moment the 200 lands. The loaded data instance goes
    // with it: it was validated against this schema's generations, and
    // leaving it behind made a later PUT of the same name serve queries
    // against a stale instance under a colliding name.
    let purged = state.caches.purge_schema(tenant.name(), entry.id);
    let purged_data = state.data.remove(&key_name).is_some();
    // The id will never be reissued, so its sidecar is dead weight.
    if let Some(dir) = &state.data_dir {
        let _ = remove_sidecar(dir, entry.id);
    }
    if let Some(mut store) = store_guard {
        match store.append_delete(tenant.name(), name) {
            Ok(appended) => {
                // Published under the store mutex, as in `register_schema`.
                if let Some(hub) = &state.repl_hub {
                    hub.publish(&WalRecord {
                        seq: appended.seq,
                        op: WalOp::Delete {
                            tenant: tenant.name().to_owned(),
                            name: name.to_owned(),
                        },
                    });
                }
            }
            Err(e) => {
                ipe_obs::counter!("store.wal.append_failed", 1);
                return Reply::json(
                    500,
                    error_body(&format!("schema removed but delete not persisted: {e}")),
                );
            }
        }
    }
    let response = SchemaDeleteResponse {
        name: split_scoped(&entry.name).1.to_owned(),
        id: entry.id,
        generation: entry.generation,
        purged_cache_entries: purged,
        purged_data,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

fn handle_get_schema(state: &Arc<ServiceState>, req: &Request, tenant: &Arc<Tenant>) -> Reply {
    let name = match schema_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let Some(entry) = state.registry.get(&scoped_name(tenant.name(), name)) else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    let info = crate::registry::SchemaInfo {
        name: split_scoped(&entry.name).1.to_owned(),
        id: entry.id,
        generation: entry.generation,
        classes: entry.schema.class_count() as u64,
        relationships: entry.schema.rel_count() as u64,
    };
    match serde_json::to_string(&info) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Replays up to `top_k` warmup journal entries against the engine,
/// inserting the results under the default-config cache key (the key
/// steady-state interactive traffic hits). Entries for unknown schemas or
/// unparsable queries are skipped; each query gets a short deadline so a
/// pathological journal cannot stall startup. Returns how many entries
/// were warmed.
fn warm_cache(state: &Arc<ServiceState>, entries: &[WarmupEntry], top_k: usize) -> u64 {
    // Group by schema so each registry entry is resolved once.
    let mut by_schema: Vec<(&str, Vec<&WarmupEntry>)> = Vec::new();
    for entry in entries.iter().take(top_k) {
        match by_schema.iter_mut().find(|(name, _)| *name == entry.schema) {
            Some((_, group)) => group.push(entry),
            None => by_schema.push((&entry.schema, vec![entry])),
        }
    }
    let cfg = CompletionConfig::default();
    let fingerprint = config_fingerprint(&cfg);
    let mut warmed = 0u64;
    for (schema_name, group) in by_schema {
        let Some(entry) = state.registry.get(schema_name) else {
            continue;
        };
        let mut keys = Vec::new();
        let mut asts = Vec::new();
        for w in group {
            let Ok(ast) = parse_path_expression(&w.query) else {
                continue;
            };
            keys.push(CacheKey {
                schema_id: entry.id,
                generation: entry.generation,
                query: ast.to_string(),
                fingerprint,
            });
            asts.push(ast);
        }
        if asts.is_empty() {
            continue;
        }
        let engine = Completer::with_config(&entry.schema, cfg.clone());
        let opts = BatchOptions {
            threads: 2,
            deadline: Some(WARMUP_REPLAY_DEADLINE),
            cancel: None,
            span: SpanHandle::none(),
        };
        // Journal keys are the scoped registry names, so each entry warms
        // the partition of the tenant that owns it.
        let cache = state.caches.partition(split_scoped(schema_name).0);
        for item in complete_batch(&engine, &asts, &opts) {
            if let Ok(outcome) = item.result {
                let key = keys[item.index].clone();
                let weight = entry_weight(&key, &outcome);
                cache.insert_weighted(key, Arc::new(outcome), weight);
                warmed += 1;
            }
        }
    }
    warmed
}

/// Extracts and validates the `:schema` segment of a `/v1/data/:schema`
/// path.
fn data_name_segment(path: &str) -> Result<&str, Reply> {
    let name = &path["/v1/data/".len()..];
    if name.is_empty() || name.contains('/') {
        return Err(Reply::json(
            400,
            error_body("schema name must be a single path segment"),
        ));
    }
    Ok(name)
}

/// `PUT /v1/data/:schema`: loads a database instance for a registered
/// schema, either from an explicit bulk spec or a synthetic `gen`
/// request. The load is generation-stamped against the schema's current
/// registry generation; oversized loads are a `413`.
fn handle_put_data(
    state: &Arc<ServiceState>,
    req: &Request,
    tenant: &Arc<Tenant>,
    obs: &mut ReqObs,
) -> Reply {
    let name = match data_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let key_name = scoped_name(tenant.name(), name);
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let parsed: DataPutRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return Reply::json(400, error_body(&format!("bad request body: {e}"))),
    };
    let Some(entry) = state.registry.get(&key_name) else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    // The tenant's quota, when set, tightens (never loosens) the
    // service-wide load cap.
    let cap = match tenant.config().max_data_entries {
        Some(limit) => (limit as usize).min(state.max_data_entries),
        None => state.max_data_entries,
    };
    let explicit = parsed.objects.len() + parsed.links.len() + parsed.attrs.len();
    let (db, source) = if let Some(gen) = &parsed.gen {
        if explicit > 0 {
            return Reply::json(
                400,
                error_body("`gen` and explicit objects/links/attrs are mutually exclusive"),
            );
        }
        let projected = gen.projected_objects(&entry.schema);
        if projected > cap as u64 {
            return Reply::json(
                413,
                error_body(&format!(
                    "generation would create ~{projected} objects, over the {cap} cap"
                )),
            );
        }
        let mut gen_span = obs.span.child("data.generate");
        gen_span.attr("projected_objects", projected);
        let db = ipe_gen::generate_database(&entry.schema, gen);
        gen_span.finish();
        (db, "gen")
    } else {
        if explicit > cap {
            return Reply::json(
                413,
                error_body(&format!("spec has {explicit} entries, over the {cap} cap")),
            );
        }
        let mut load_span = obs.span.child("data.load");
        load_span.attr("entries", explicit as u64);
        let db = match ipe_query::load(&entry.schema, &parsed.spec()) {
            Ok(db) => db,
            Err(e) => return Reply::json(422, error_body(&e.to_string())),
        };
        load_span.finish();
        (db, "spec")
    };
    let loaded = state
        .data
        .insert(&key_name, entry.id, entry.generation, source, db);
    ipe_obs::counter!("service.data.put", 1);
    let response = data_view(&loaded);
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Renders a data entry's summary (PUT and GET share the shape).
fn data_view(entry: &crate::DataEntry) -> DataPutResponse {
    DataPutResponse {
        schema: split_scoped(&entry.schema_name).1.to_owned(),
        schema_generation: entry.schema_generation,
        data_generation: entry.data_generation,
        source: entry.source.to_owned(),
        objects: entry.db.object_count() as u64,
        links: entry.db.link_count() as u64,
        attrs: entry.db.attr_count() as u64,
    }
}

/// `GET /v1/data/:schema`: the loaded instance's summary.
fn handle_get_data(state: &Arc<ServiceState>, req: &Request, tenant: &Arc<Tenant>) -> Reply {
    let name = match data_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let Some(entry) = state.data.get(&scoped_name(tenant.name(), name)) else {
        return Reply::json(404, error_body(&format!("no data loaded for `{name}`")));
    };
    match serde_json::to_string(&data_view(&entry)) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// `DELETE /v1/data/:schema`: drops the loaded instance.
fn handle_delete_data(state: &Arc<ServiceState>, req: &Request, tenant: &Arc<Tenant>) -> Reply {
    let name = match data_name_segment(&req.path) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let Some(entry) = state.data.remove(&scoped_name(tenant.name(), name)) else {
        return Reply::json(404, error_body(&format!("no data loaded for `{name}`")));
    };
    let response = DataDeleteResponse {
        schema: split_scoped(&entry.schema_name).1.to_owned(),
        data_generation: entry.data_generation,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// `POST /v1/query`: disambiguate an incomplete expression (through the
/// completion cache) and evaluate the top-E completions against the
/// schema's loaded data, answering with the certain/possible partition
/// and per-answer provenance.
///
/// Error mapping: unknown schema or no loaded data → `404`; data loaded
/// against an older schema generation → `409`; unparsable body or query →
/// `400`; already-complete expression at `e > 1`, engine rejections, and
/// evaluation failures → `422`; deadline or budget exhaustion → `504`.
fn handle_query(
    state: &Arc<ServiceState>,
    req: &Request,
    tenant: &Arc<Tenant>,
    obs: &mut ReqObs,
) -> Reply {
    ipe_obs::counter!("query.requests", 1);
    let _t = ipe_obs::timer!("query.request");
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return Reply::json(400, error_body(msg)),
    };
    let mut parsed: QueryRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return Reply::json(400, error_body(&format!("bad request body: {e}"))),
    };
    // Tenant defaults fill only what the request left unset.
    let tcfg = tenant.config();
    if parsed.e.is_none() {
        parsed.e = tcfg.default_e;
    }
    if parsed.pruning.is_none() {
        parsed.pruning = tcfg.default_pruning.clone();
    }
    let started = Instant::now();
    let name = parsed.schema_name();
    let key_name = scoped_name(tenant.name(), name);
    let mut lookup_span = obs.span.child("registry.lookup");
    lookup_span.note(name);
    let entry = state.registry.get(&key_name);
    lookup_span.attr("found", entry.is_some() as u64);
    lookup_span.finish();
    if let Some(refused) = admit_read(state, name, entry.as_ref(), parsed.min_generation) {
        return refused;
    }
    let Some(entry) = entry else {
        return Reply::json(404, error_body(&format!("no schema named `{name}`")));
    };
    let mut data_span = obs.span.child("data.lookup");
    let data = state.data.get(&key_name);
    data_span.attr("found", data.is_some() as u64);
    data_span.finish();
    let Some(data) = data else {
        return Reply::json(
            404,
            error_body(&format!(
                "no data loaded for `{name}`; PUT /v1/data/{name} first"
            )),
        );
    };
    if data.schema_id != entry.id || data.schema_generation != entry.generation {
        ipe_obs::counter!("query.stale_data", 1);
        return Reply::json(
            409,
            error_body(&format!(
                "data for `{name}` was loaded against schema generation {} but the schema is now at generation {}; re-PUT /v1/data/{name}",
                data.schema_generation, entry.generation
            )),
        );
    }
    let mut parse_span = obs.span.child("parse");
    parse_span.note(&parsed.query);
    let ast = match parse_path_expression(&parsed.query) {
        Ok(ast) => ast,
        Err(e) => return Reply::json(400, error_body(&e.to_string())),
    };
    parse_span.finish();
    let cfg = match parsed.config(&entry.schema) {
        Ok(cfg) => cfg,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    if ast.is_complete() && cfg.e > 1 {
        return Reply::json(422, error_body(&QueryError::AlreadyComplete.to_string()));
    }
    let deadline_ms = parsed
        .deadline_ms
        .or(tcfg.deadline_ms)
        .unwrap_or(state.query_deadline_ms)
        .min(MAX_QUERY_DEADLINE_MS);
    let deadline = (deadline_ms > 0).then(|| started + Duration::from_millis(deadline_ms));
    // The completion phase shares the completion cache with
    // POST /v1/complete: same key, same entries, so a warm query reuses
    // the completion set and cold/warm answers are identical by
    // construction.
    let normalized = ast.to_string();
    let key = CacheKey {
        schema_id: entry.id,
        generation: entry.generation,
        query: normalized.clone(),
        fingerprint: config_fingerprint(&cfg),
    };
    let cache = state.caches.partition(tenant.name());
    let mut probe_span = obs.span.child("cache.probe");
    let probe = cache.get(&key);
    probe_span.attr("hit", probe.is_some() as u64);
    probe_span.finish();
    let e = cfg.e as u64;
    let (outcome, cached) = match probe {
        Some(hit) => (hit, true),
        None => {
            let mut engine = Completer::with_config(&entry.schema, cfg);
            let indexed = entry
                .index()
                .map(|ix| engine.attach_index(ix))
                .unwrap_or(false);
            state.count_complete(indexed);
            let mut search_span = obs.span.child("search");
            search_span.attr("indexed", indexed as u64);
            let limits = SearchLimits {
                deadline,
                span: search_span.handle(),
                ..SearchLimits::default()
            };
            match engine.complete_bounded(&ast, &limits) {
                Ok(outcome) => {
                    search_span.attr("calls", outcome.stats.calls);
                    search_span.finish();
                    obs.absorb_stats(&outcome.stats);
                    let weight = entry_weight(&key, &outcome);
                    let outcome = Arc::new(outcome);
                    cache.insert_weighted(key, Arc::clone(&outcome), weight);
                    (outcome, false)
                }
                Err(CompleteError::DeadlineExceeded) => {
                    ipe_obs::counter!("query.deadline_exceeded", 1);
                    return Reply::json(504, error_body("query deadline exceeded during search"));
                }
                Err(e) => return Reply::json(422, error_body(&e.to_string())),
            }
        }
    };
    obs.cache_hit = Some(cached);
    let eval_limits = EvalLimits {
        deadline,
        ..EvalLimits::default()
    };
    let mut eval_span = obs.span.child("evaluate");
    eval_span.attr("completions", outcome.completions.len() as u64);
    let merged = match evaluate_completions(&data.db, &outcome.completions, &eval_limits) {
        Ok(m) => m,
        Err(err) if ipe_query::is_deadline(&err) => {
            ipe_obs::counter!("query.deadline_exceeded", 1);
            return Reply::json(504, error_body(&err.to_string()));
        }
        Err(err) => return Reply::json(422, error_body(&err.to_string())),
    };
    eval_span.attr("possible", merged.possible() as u64);
    eval_span.attr("certain", merged.certain as u64);
    eval_span.finish();
    let certain = merged.certain as u64;
    let possible = merged.possible() as u64;
    let visited = merged.visited;
    let answers = merged
        .answers
        .iter()
        .filter(|a| a.certain || !parsed.certain_only)
        .map(answer_view)
        .collect();
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let response = QueryResponse {
        schema: split_scoped(&entry.name).1.to_owned(),
        generation: entry.generation,
        data_generation: data.data_generation,
        query: normalized,
        e,
        cached,
        duration_ns,
        completions: completion_views(&entry.schema, &outcome),
        answers,
        certain,
        possible,
        visited,
        stats: outcome.stats,
    };
    match serde_json::to_string(&response) {
        Ok(json) => Reply::json(200, json),
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// Renders one provenance-annotated answer into wire form.
fn answer_view(a: &ipe_query::ProvenanceAnswer) -> AnswerView {
    let (kind, object, value) = match &a.answer {
        Answer::Object(o) => ("object", Some(o.0 as u64), None),
        Answer::Value(v) => ("value", None, Some(v.to_string())),
    };
    AnswerView {
        kind: kind.to_owned(),
        object,
        value,
        certain: a.certain,
        completions: a.completions.iter().map(|&i| i as u64).collect(),
    }
}

/// Builds the `/metrics` body: the standard `ipe-obs` [`Report`] (global
/// counters and timers, including `service.cache.*` and
/// `service.request`) extended with a `service` section of live gauges.
///
/// [`Report`]: ipe_obs::Report
pub fn metrics_json(state: &ServiceState) -> String {
    let mut report = ipe_obs::Report::new();
    report.meta("component", "ipe-service");
    report.capture_metrics();
    attach_service_gauges(&mut report, serde_json::to_string(&state.metrics_view()));
    report.to_json()
}

/// Attaches the serialized `service` gauge section to a metrics report.
/// A serialization failure must not silently drop the section — the
/// scrape keeps its shape and carries an explicit error instead.
fn attach_service_gauges(report: &mut ipe_obs::Report, gauges: Result<String, serde_json::Error>) {
    match gauges {
        Ok(json) => report.attach_json("service", json),
        Err(e) => report.attach_json(
            "service",
            error_body(&format!("service gauges unavailable: {e}")),
        ),
    };
}

/// Builds the `/metrics?format=prometheus` body: every registered
/// counter and log2-bucket timer as Prometheus `counter`/`histogram`
/// families (with derived p50/p95/p99 quantile gauges), plus the live
/// service gauges.
pub fn metrics_prometheus(state: &ServiceState) -> String {
    use ipe_obs::prom::Gauge;
    let m = state.metrics_view();
    let mut gauges = vec![
        Gauge::new(
            "service.cache.entries",
            "Live entries in the completion cache.",
            m.cache.entries as f64,
        ),
        Gauge::new(
            "service.cache.bytes",
            "Approximate bytes held by completion-cache entries.",
            m.cache.bytes as f64,
        ),
        Gauge::new(
            "service.workers",
            "Reactor threads serving requests.",
            m.workers as f64,
        ),
        Gauge::new(
            "service.queue_depth",
            "Connections held live across all reactors right now.",
            m.queue_depth as f64,
        ),
        Gauge::new(
            "service.schemas",
            "Schemas registered in the service.",
            m.schemas as f64,
        ),
        Gauge::new(
            "service.data.loaded",
            "Data instances loaded in the service.",
            m.data_sets as f64,
        ),
        Gauge::new(
            "service.wal_last_seq",
            "Last durable WAL sequence number (0 when not durable).",
            m.wal_last_seq as f64,
        ),
        Gauge::new(
            "service.index.builds_completed",
            "Closure index builds finished since startup.",
            m.index.builds_completed as f64,
        ),
        Gauge::new(
            "service.index.builds_in_flight",
            "Closure index builds currently running.",
            m.index.builds_in_flight as f64,
        ),
        Gauge::new(
            "service.flight.recorded",
            "Request traces retained in the flight recorder.",
            state.flight.recorded() as f64,
        ),
    ];
    if m.repl.role != "none" {
        gauges.push(Gauge::new(
            "service.repl.lag_seq",
            "WAL records the replica is behind the leader (0 on a leader).",
            m.repl.lag_seq as f64,
        ));
        gauges.push(Gauge::new(
            "service.repl.lag_ms",
            "Milliseconds since the replica was last level with the leader.",
            m.repl.lag_ms as f64,
        ));
        gauges.push(Gauge::new(
            "service.repl.streams_active",
            "Replication streams this leader is serving right now.",
            m.repl.streams_active as f64,
        ));
        gauges.push(Gauge::new(
            "service.repl.connected",
            "Whether the follower's stream connection is up (1/0).",
            m.repl.connected as u64 as f64,
        ));
    }
    // Per-tenant families. The exposition layer has no label support, so
    // the tenant name is embedded in the metric name (tenant names are
    // `[a-z0-9_-]`, which mangles losslessly): `ipe_tenant_<name>_<what>`.
    for t in &m.tenants {
        let name = &t.tenant;
        gauges.push(Gauge::new(
            format!("tenant.{name}.admitted"),
            "Requests admitted past this tenant's rate quota.",
            t.admitted as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.throttled"),
            "Requests bounced 429 by this tenant's rate quota.",
            t.throttled as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.busy"),
            "Requests bounced 429 by this tenant's concurrent-search cap.",
            t.busy as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.searches"),
            "Engine searches this tenant has executed.",
            t.searches as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.in_flight"),
            "Searches in flight for this tenant right now.",
            t.in_flight as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.cache.entries"),
            "Live entries in this tenant's cache partition.",
            t.cache.entries as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.cache.bytes"),
            "Approximate bytes held by this tenant's cache partition.",
            t.cache.bytes as f64,
        ));
        gauges.push(Gauge::new(
            format!("tenant.{name}.cache.budget_bytes"),
            "Byte budget of this tenant's cache partition (0 = none).",
            t.cache_budget_bytes as f64,
        ));
    }
    ipe_obs::prom::render(&gauges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The vendored `serde_json` serializer never actually fails, so the
    /// error branch of the gauge attachment is exercised with an error
    /// manufactured from the parser.
    #[test]
    fn metrics_report_carries_explicit_error_when_gauges_fail() {
        let err = serde_json::from_str::<u64>("not a number").unwrap_err();
        let mut report = ipe_obs::Report::new();
        attach_service_gauges(&mut report, Err(err));
        let json = report.to_json();
        assert!(
            json.contains("service gauges unavailable"),
            "error must be visible in the report: {json}"
        );
        assert!(
            json.contains("\"service\""),
            "the service section must keep its shape: {json}"
        );
    }

    #[test]
    fn metrics_report_embeds_gauges_on_success() {
        let mut report = ipe_obs::Report::new();
        attach_service_gauges(&mut report, Ok("{\"workers\": 4}".to_owned()));
        let json = report.to_json();
        assert!(json.contains("\"workers\": 4"), "{json}");
    }

    /// Route labels cover every endpoint family; unknown paths fall into
    /// `other` rather than panicking or mislabeling.
    #[test]
    fn route_labels() {
        let req = |method: &str, path: &str| Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query: String::new(),
            params: Vec::new(),
            trace_id: None,
            keep_alive: true,
            body: Vec::new(),
        };
        assert_eq!(route_label(&req("POST", "/v1/complete")), "complete");
        assert_eq!(route_label(&req("POST", "/v1/complete/batch")), "batch");
        assert_eq!(route_label(&req("GET", "/v1/schemas")), "schemas");
        assert_eq!(route_label(&req("PUT", "/v1/schemas/x")), "schemas");
        assert_eq!(route_label(&req("GET", "/healthz")), "healthz");
        assert_eq!(route_label(&req("GET", "/readyz")), "readyz");
        assert_eq!(route_label(&req("GET", "/v1/repl/stream")), "repl");
        assert_eq!(route_label(&req("GET", "/v1/repl/status")), "repl");
        assert_eq!(route_label(&req("GET", "/metrics")), "metrics");
        assert_eq!(route_label(&req("GET", "/v1/debug/requests")), "debug");
        assert_eq!(route_label(&req("GET", "/v1/debug/requests/abc")), "debug");
        assert_eq!(route_label(&req("POST", "/v1/shutdown")), "shutdown");
        assert_eq!(route_label(&req("GET", "/nope")), "other");
    }
}
