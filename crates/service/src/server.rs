//! The long-lived disambiguation server: a `TcpListener` accept loop, a
//! fixed worker pool fed by a bounded queue, and graceful shutdown.
//!
//! Connections the queue cannot absorb are answered `503` immediately
//! instead of piling up. Each worker owns one connection at a time
//! (HTTP/1.1 keep-alive), so sizing `workers` bounds both concurrency and
//! memory. Shutdown — via [`Server::shutdown`] or `POST /v1/shutdown` —
//! stops the accept loop, drains the queue, and lets in-flight
//! connections finish their current request.

use crate::api::{
    error_body, CompleteRequest, CompleteResponse, CompletionView, SchemaPutResponse,
};
use crate::cache::{config_fingerprint, CacheKey, CompletionCache};
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::registry::SchemaRegistry;
use ipe_core::Completer;
use ipe_parser::parse_path_expression;
use ipe_schema::Schema;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads; each owns one live connection at a time.
    pub workers: usize,
    /// Accepted-but-unclaimed connection backlog; beyond it new
    /// connections get an immediate `503`.
    pub queue_depth: usize,
    /// Socket read/write timeout per request (also reaps idle keep-alive
    /// connections).
    pub request_timeout: Duration,
    /// Completion cache size in entries.
    pub cache_capacity: usize,
    /// Completion cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7474".to_owned(),
            workers: 8,
            queue_depth: 64,
            request_timeout: Duration::from_secs(10),
            cache_capacity: 4096,
            cache_shards: 16,
        }
    }
}

/// Shared state of a running server: registry, cache, and gauges.
pub struct ServiceState {
    /// The schema registry.
    pub registry: SchemaRegistry,
    /// The completion cache.
    pub cache: CompletionCache,
    workers: usize,
    queue_depth: AtomicU64,
    requests_total: AtomicU64,
    rejected_total: AtomicU64,
    shutdown: AtomicBool,
    bound_addr: OnceLock<SocketAddr>,
}

impl ServiceState {
    fn new(config: &ServiceConfig) -> ServiceState {
        ServiceState {
            registry: SchemaRegistry::new(),
            cache: CompletionCache::new(config.cache_capacity, config.cache_shards),
            workers: config.workers,
            queue_depth: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bound_addr: OnceLock::new(),
        }
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and unblocks the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so a blocked `accept` observes the flag.
        if let Some(addr) = self.bound_addr.get() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
    }

    /// Gauges for `/metrics`.
    fn metrics_view(&self) -> ServiceMetrics {
        ServiceMetrics {
            cache: self.cache.stats(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            workers: self.workers as u64,
            schemas: self.registry.list().len() as u64,
        }
    }
}

/// The `service` section of `GET /metrics`.
#[derive(Debug, serde::Serialize)]
struct ServiceMetrics {
    cache: crate::cache::CacheStats,
    queue_depth: u64,
    requests_total: u64,
    rejected_total: u64,
    workers: u64,
    schemas: u64,
}

/// A running disambiguation server. Dropping the handle does **not** stop
/// the threads; call [`Server::shutdown`] (or hit `POST /v1/shutdown` and
/// [`Server::join`]).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the accept loop plus the worker
    /// pool. Returns once the socket is listening.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServiceState::new(&config));
        state
            .bound_addr
            .set(addr)
            .expect("bound_addr set exactly once");

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let timeout = config.request_timeout;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("ipe-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state, timeout))
                    .expect("spawn worker"),
            );
        }
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("ipe-accept".to_owned())
            .spawn(move || accept_loop(&listener, &tx, &accept_state))
            .expect("spawn accept loop");
        Ok(Server {
            addr,
            state,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry/cache/gauge state.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Blocks until the server has shut down (via [`Server::shutdown`]
    /// from another thread or `POST /v1/shutdown`) and every worker has
    /// drained.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests shutdown and waits for all threads to finish.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, state: &Arc<ServiceState>) {
    loop {
        if state.shutting_down() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutting_down() {
            // The connection that woke us may be the shutdown poke.
            break;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                state.queue_depth.fetch_add(1, Ordering::Relaxed);
                ipe_obs::counter!("service.conn.accepted", 1);
            }
            Err(TrySendError::Full(mut stream)) => {
                state.rejected_total.fetch_add(1, Ordering::Relaxed);
                ipe_obs::counter!("service.conn.rejected", 1);
                let _ = write_response(
                    &mut stream,
                    503,
                    "application/json",
                    &error_body("request queue is full"),
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` closes the queue; workers exit once it drains.
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<ServiceState>, timeout: Duration) {
    loop {
        // Holding the lock across `recv` serializes only the *idle*
        // workers; a connection is handled after the guard drops.
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = conn else {
            return; // queue closed: shutdown
        };
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        handle_connection(stream, state, timeout);
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServiceState>, timeout: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    loop {
        match read_request(&mut stream) {
            ReadOutcome::Ok(req) => {
                let keep = req.keep_alive;
                let (status, body) = route(state, &req);
                if write_response(&mut stream, status, "application/json", &body, keep).is_err() {
                    break;
                }
                if state.shutting_down() {
                    // This request was (or raced with) the shutdown call;
                    // unblock the accept loop and close.
                    state.request_shutdown();
                    break;
                }
                if !keep {
                    break;
                }
            }
            ReadOutcome::Closed => break,
            ReadOutcome::Malformed(msg) => {
                let _ = write_response(
                    &mut stream,
                    400,
                    "application/json",
                    &error_body(msg),
                    false,
                );
                break;
            }
            ReadOutcome::Err(_) => break, // timeout or I/O error
        }
    }
}

/// Dispatches one request. Returns `(status, body)`.
fn route(state: &Arc<ServiceState>, req: &Request) -> (u16, String) {
    let _t = ipe_obs::timer!("service.request");
    ipe_obs::counter!("service.requests", 1);
    state.requests_total.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/complete") => handle_complete(state, req),
        ("GET", "/v1/schemas") => {
            let list = state.registry.list();
            match serde_json::to_string(&list) {
                Ok(json) => (200, format!("{{\"schemas\": {json}}}")),
                Err(e) => (500, error_body(&e.to_string())),
            }
        }
        ("PUT", path) if path.starts_with("/v1/schemas/") => handle_put_schema(state, req),
        ("GET", "/healthz") => (200, "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/metrics") => (200, metrics_json(state)),
        ("POST", "/v1/shutdown") => {
            // Flag only; the poke happens after the response is written.
            state.shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\": true}".to_owned())
        }
        _ => (404, error_body("no such endpoint")),
    }
}

fn handle_complete(state: &Arc<ServiceState>, req: &Request) -> (u16, String) {
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return (400, error_body(msg)),
    };
    let parsed: CompleteRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return (400, error_body(&format!("bad request body: {e}"))),
    };
    let started = Instant::now();
    let name = parsed.schema_name();
    let Some(entry) = state.registry.get(name) else {
        return (404, error_body(&format!("no schema named `{name}`")));
    };
    let ast = match parse_path_expression(&parsed.query) {
        Ok(ast) => ast,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let cfg = match parsed.config(&entry.schema) {
        Ok(cfg) => cfg,
        Err(msg) => return (400, error_body(&msg)),
    };
    let normalized = ast.to_string();
    let key = CacheKey {
        schema_id: entry.id,
        generation: entry.generation,
        query: normalized.clone(),
        fingerprint: config_fingerprint(&cfg),
    };
    let (outcome, cached) = match state.cache.get(&key) {
        Some(hit) => (hit, true),
        None => {
            let engine = Completer::with_config(&entry.schema, cfg);
            match engine.complete_with_stats(&ast) {
                Ok(outcome) => {
                    let outcome = Arc::new(outcome);
                    state.cache.insert(key, Arc::clone(&outcome));
                    (outcome, false)
                }
                Err(e) => return (422, error_body(&e.to_string())),
            }
        }
    };
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let response = CompleteResponse {
        schema: entry.name.clone(),
        generation: entry.generation,
        query: normalized,
        cached,
        duration_ns,
        completions: outcome
            .completions
            .iter()
            .map(|c| CompletionView {
                text: c.display(&entry.schema).to_string(),
                connector: c.label.connector.to_string(),
                semlen: c.label.semlen as u64,
                edges: c.edges.len() as u64,
            })
            .collect(),
        stats: outcome.stats,
    };
    match serde_json::to_string(&response) {
        Ok(json) => (200, json),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

fn handle_put_schema(state: &Arc<ServiceState>, req: &Request) -> (u16, String) {
    let name = &req.path["/v1/schemas/".len()..];
    if name.is_empty() || name.contains('/') {
        return (400, error_body("schema name must be a single path segment"));
    }
    let body = match req.text() {
        Ok(b) => b,
        Err(msg) => return (400, error_body(msg)),
    };
    let schema = match Schema::from_json(body) {
        Ok(s) => s,
        Err(e) => return (400, error_body(&format!("invalid schema: {e}"))),
    };
    let entry = state.registry.insert(name, schema);
    // Generation keying already shields correctness; purging just frees
    // the dead generations' memory eagerly.
    let purged = if entry.generation > 1 {
        state.cache.purge_schema(entry.id)
    } else {
        0
    };
    let response = SchemaPutResponse {
        name: entry.name.clone(),
        id: entry.id,
        generation: entry.generation,
        purged_cache_entries: purged,
    };
    match serde_json::to_string(&response) {
        Ok(json) => (200, json),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

/// Builds the `/metrics` body: the standard `ipe-obs` [`Report`] (global
/// counters and timers, including `service.cache.*` and
/// `service.request`) extended with a `service` section of live gauges.
///
/// [`Report`]: ipe_obs::Report
pub fn metrics_json(state: &ServiceState) -> String {
    let mut report = ipe_obs::Report::new();
    report.meta("component", "ipe-service");
    report.capture_metrics();
    if let Ok(json) = serde_json::to_string(&state.metrics_view()) {
        report.attach_json("service", json);
    }
    report.to_json()
}
