//! Service wiring for WAL-shipping replication: the leader's stream
//! endpoint and the follower's apply loop.
//!
//! The leader side runs one blocking thread per subscribed follower. The
//! reactor parses `GET /v1/repl/stream`, then *detaches* the connection
//! from its epoll loop and hands the raw socket here, because a
//! replication stream is the opposite of a request/response cycle: it
//! lives for hours and is written to whenever the WAL grows. The thread
//! snapshots the resume decision and subscribes to the [`ReplHub`] while
//! holding the store mutex — the same mutex every WAL append holds when
//! it publishes — so the suffix it reads from disk and the live feed it
//! tails are gap-free and overlap-free by construction.
//!
//! The follower side runs one thread for the whole process lifetime. It
//! connects with a resume point, applies snapshots and records through
//! the same `restore()` path crash recovery uses (so a replica is always
//! in a state the leader could have restarted from), and reconnects with
//! exponential backoff, resuming from the last durably applied sequence
//! number. Index sidecars are rebuilt off the apply path by the ordinary
//! background build machinery.

use crate::server::{lock_recover, spawn_index_build, ServiceState};
use ipe_repl::{Backoff, ClientError, ReplClient, ReplEvent, SubEvent, REPL_MAGIC};
use ipe_schema::Schema;
use ipe_store::{remove_sidecar, Snapshot, WalOp, WalRecord};
use ipe_tenant::{scoped_name, split_scoped};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Idle cadence of the leader stream: how long it waits for a fresh WAL
/// record before emitting a heartbeat instead.
pub(crate) const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);
/// Leader-side write timeout: a follower that accepts no bytes for this
/// long is cut off (it will reconnect and resume).
const STREAM_WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Follower-side read timeout, so the apply loop can poll the shutdown
/// flag between events.
const FOLLOWER_READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Follower-side connect timeout per attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Marker a route handler puts on a [`crate::server::Reply`] to tell the
/// reactor: after flushing the response head, detach this connection and
/// hand it to a replication streaming thread starting at `from_seq`.
pub(crate) struct StreamStart {
    /// Resume point (exclusive): the leader sends records with
    /// `seq > from_seq`.
    pub(crate) from_seq: u64,
}

/// Live view of a follower's replication progress, shared between the
/// apply thread (writer) and the request handlers (`/readyz`, admission
/// checks, `/metrics`).
pub struct FollowerStatus {
    /// The leader's `host:port`, echoed in `x-ipe-leader` on rejected
    /// writes.
    pub leader: String,
    applied_seq: AtomicU64,
    leader_seq: AtomicU64,
    connected: AtomicBool,
    /// Whether this follower has ever drawn level with the leader since
    /// the process started; readiness requires it so a freshly booted
    /// replica that merely hasn't *heard* a higher seq yet is not ready.
    caught_up_once: AtomicBool,
    /// When the follower last observed `applied_seq >= leader_seq`;
    /// `lag_ms` is the time since.
    last_caught_up: Mutex<Instant>,
    reconnects: AtomicU64,
    records_applied: AtomicU64,
    snapshots_installed: AtomicU64,
}

impl FollowerStatus {
    pub(crate) fn new(leader: String) -> FollowerStatus {
        FollowerStatus {
            leader,
            applied_seq: AtomicU64::new(0),
            leader_seq: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            caught_up_once: AtomicBool::new(false),
            last_caught_up: Mutex::new(Instant::now()),
            reconnects: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            snapshots_installed: AtomicU64::new(0),
        }
    }

    /// Seeds the resume point from local crash recovery, before the apply
    /// thread starts.
    pub(crate) fn restore_applied(&self, seq: u64) {
        self.applied_seq.store(seq, Ordering::SeqCst);
    }

    /// Highest sequence number applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::SeqCst)
    }

    /// Highest sequence number the leader has advertised.
    pub fn leader_seq(&self) -> u64 {
        self.leader_seq.load(Ordering::SeqCst)
    }

    /// Whether the stream connection is currently up.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Records applied minus records advertised — how far behind this
    /// replica's state is.
    pub fn lag_seq(&self) -> u64 {
        self.leader_seq().saturating_sub(self.applied_seq())
    }

    /// Milliseconds since the follower was last level with the leader
    /// (0 while level).
    pub fn lag_ms(&self) -> u64 {
        if self.lag_seq() == 0 && self.caught_up_once.load(Ordering::SeqCst) {
            return 0;
        }
        lock_recover(&self.last_caught_up, "follower lag clock")
            .elapsed()
            .as_millis()
            .min(u64::MAX as u128) as u64
    }

    /// Whether reads may be served at full fidelity: connected, level
    /// with the leader, and has been level at least once this process.
    pub fn is_ready(&self) -> bool {
        self.connected() && self.caught_up_once.load(Ordering::SeqCst) && self.lag_seq() == 0
    }

    /// Times this follower has re-established the stream.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Records applied since startup.
    pub fn records_applied(&self) -> u64 {
        self.records_applied.load(Ordering::Relaxed)
    }

    /// Full snapshots installed since startup.
    pub fn snapshots_installed(&self) -> u64 {
        self.snapshots_installed.load(Ordering::Relaxed)
    }

    fn set_connected(&self, up: bool) {
        self.connected.store(up, Ordering::SeqCst);
    }

    fn note_leader_seq(&self, seq: u64) {
        self.leader_seq.fetch_max(seq, Ordering::SeqCst);
        self.refresh_caught_up();
    }

    fn note_applied(&self, seq: u64) {
        self.applied_seq.store(seq, Ordering::SeqCst);
        self.records_applied.fetch_add(1, Ordering::Relaxed);
        self.refresh_caught_up();
    }

    fn refresh_caught_up(&self) {
        if self.applied_seq() >= self.leader_seq() {
            self.caught_up_once.store(true, Ordering::SeqCst);
            *lock_recover(&self.last_caught_up, "follower lag clock") = Instant::now();
        }
    }
}

/// Spawns the blocking thread that owns one follower's stream: writes the
/// buffered response head, the stream magic, the Hello, the snapshot or
/// WAL suffix, then tails the hub until the follower drops, falls too far
/// behind, or the server drains.
pub(crate) fn spawn_leader_stream(
    state: &Arc<ServiceState>,
    stream: TcpStream,
    pending_head: Vec<u8>,
    start: StreamStart,
) {
    let st = Arc::clone(state);
    let spawn = std::thread::Builder::new()
        .name("ipe-repl-stream".to_owned())
        .spawn(move || {
            st.repl_streams_active.fetch_add(1, Ordering::SeqCst);
            ipe_obs::counter!("repl.stream.started", 1);
            if let Err(e) = serve_stream(&st, stream, pending_head, start) {
                ipe_obs::counter!("repl.stream.errors", 1);
                eprintln!("ipe-service: replication stream ended: {e}");
            }
            st.repl_streams_active.fetch_sub(1, Ordering::SeqCst);
        });
    match spawn {
        Ok(handle) => lock_recover(&state.repl_threads, "repl threads").push(handle),
        Err(e) => {
            ipe_obs::counter!("repl.stream.spawn_failed", 1);
            eprintln!("ipe-service: failed to spawn replication stream: {e}");
        }
    }
}

fn serve_stream(
    state: &Arc<ServiceState>,
    mut stream: TcpStream,
    pending_head: Vec<u8>,
    start: StreamStart,
) -> std::io::Result<()> {
    let hub = state
        .repl_hub
        .as_ref()
        .expect("stream replies only exist on leaders");
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(STREAM_WRITE_TIMEOUT))?;
    stream.write_all(&pending_head)?;

    // The resume decision, the suffix read, and the hub subscription all
    // happen under the store mutex — the mutex `register_schema` holds
    // when it publishes — so every record is delivered exactly once:
    // appended-before-subscribe records are in the suffix, records after
    // are in the queue, and nothing is in both.
    let (first_frames, mut sent_through, sub) = {
        let store = lock_recover(
            state
                .store
                .as_ref()
                .expect("leader streams require a store"),
            "store",
        );
        let last_seq = store.last_seq();
        let snapshot_mode = start.from_seq < store.compacted_through() || start.from_seq > last_seq;
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let sent_through;
        if snapshot_mode {
            let snap = store.export_snapshot();
            sent_through = snap.last_seq;
            frames.push(
                ipe_repl::Frame::Hello {
                    leader_last_seq: last_seq,
                    start_mode: ipe_repl::START_SNAPSHOT,
                }
                .encode(),
            );
            frames.push(ipe_repl::Frame::Snapshot(snap.to_bytes()).encode());
            ipe_obs::counter!("repl.stream.snapshots_sent", 1);
        } else {
            let suffix = store
                .wal_records_after(start.from_seq)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            sent_through = suffix.last().map(|r| r.seq).unwrap_or(start.from_seq);
            frames.push(
                ipe_repl::Frame::Hello {
                    leader_last_seq: last_seq,
                    start_mode: ipe_repl::START_SUFFIX,
                }
                .encode(),
            );
            for record in &suffix {
                frames.push(ipe_repl::Frame::Record(record.encode_payload()).encode());
            }
        }
        (frames, sent_through, hub.subscribe())
    };

    stream.write_all(REPL_MAGIC)?;
    for frame in first_frames {
        stream.write_all(&frame)?;
    }

    loop {
        if state.shutting_down() {
            return Ok(());
        }
        match sub.pop(HEARTBEAT_EVERY) {
            SubEvent::Record(record) => {
                // Defensive: a record already covered by the suffix (or
                // snapshot) read under the lock must not be re-sent.
                if record.seq <= sent_through {
                    continue;
                }
                stream.write_all(&ipe_repl::Frame::Record(record.encode_payload()).encode())?;
                sent_through = record.seq;
                ipe_obs::counter!("repl.stream.records_sent", 1);
            }
            SubEvent::Timeout => {
                stream.write_all(
                    &ipe_repl::Frame::Heartbeat {
                        leader_last_seq: hub.last_seq(),
                    }
                    .encode(),
                )?;
                ipe_obs::counter!("repl.stream.heartbeats", 1);
            }
            SubEvent::Lagged => {
                // The follower stopped draining and its queue overflowed;
                // drop the stream so it reconnects and resumes (possibly
                // via snapshot) instead of holding unbounded memory here.
                ipe_obs::counter!("repl.stream.lag_dropped", 1);
                return Ok(());
            }
            SubEvent::Closed => return Ok(()),
        }
    }
}

/// The follower apply loop: connect, apply, reconnect with backoff, until
/// shutdown. Runs on its own thread, joined by the server's drain.
pub(crate) fn follower_loop(state: Arc<ServiceState>) {
    let status = Arc::clone(
        state
            .follower
            .as_ref()
            .expect("follower loop requires follower state"),
    );
    let mut backoff = Backoff::new();
    while !state.shutting_down() {
        let from_seq = status.applied_seq();
        let mut client = match ReplClient::connect(
            &status.leader,
            from_seq,
            CONNECT_TIMEOUT,
            FOLLOWER_READ_TIMEOUT,
        ) {
            Ok(client) => client,
            Err(e) => {
                ipe_obs::counter!("repl.follower.connect_failed", 1);
                eprintln!(
                    "ipe-service: cannot reach leader {}: {e}; retrying",
                    status.leader
                );
                sleep_unless_shutdown(&state, backoff.next_delay());
                continue;
            }
        };
        status.set_connected(true);
        backoff.reset();
        ipe_obs::counter!("repl.follower.connected", 1);
        loop {
            if state.shutting_down() {
                status.set_connected(false);
                return;
            }
            match client.next_event() {
                Ok(None) => continue, // read timeout: re-check shutdown
                Ok(Some(event)) => {
                    if let Err(e) = apply_event(&state, &status, event) {
                        ipe_obs::counter!("repl.follower.apply_failed", 1);
                        eprintln!("ipe-service: replication apply failed: {e}; reconnecting");
                        break;
                    }
                }
                Err(ClientError::Disconnected) => {
                    eprintln!("ipe-service: leader closed the stream; reconnecting");
                    break;
                }
                Err(e) => {
                    eprintln!("ipe-service: replication stream error: {e}; reconnecting");
                    break;
                }
            }
        }
        status.set_connected(false);
        status.reconnects.fetch_add(1, Ordering::Relaxed);
        ipe_obs::counter!("repl.follower.reconnects", 1);
        sleep_unless_shutdown(&state, backoff.next_delay());
    }
    status.set_connected(false);
}

/// Sleeps `total` in short slices, returning early once shutdown is
/// requested, so a draining follower never waits out a full backoff.
fn sleep_unless_shutdown(state: &ServiceState, total: Duration) {
    let deadline = Instant::now() + total;
    while !state.shutting_down() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(50)));
    }
}

fn apply_event(
    state: &Arc<ServiceState>,
    status: &FollowerStatus,
    event: ReplEvent,
) -> Result<(), String> {
    match event {
        ReplEvent::Hello {
            leader_last_seq, ..
        }
        | ReplEvent::Heartbeat { leader_last_seq } => {
            status.note_leader_seq(leader_last_seq);
            Ok(())
        }
        ReplEvent::Snapshot(snap) => install_snapshot(state, status, snap),
        ReplEvent::Record(record) => apply_record(state, status, record),
    }
}

/// Installs a full leader snapshot: durable store state first (so a crash
/// mid-install recovers to either the old or the new state, never a mix),
/// then the registry hot-swap — restores for everything the snapshot
/// carries, removals (with cache and data purges) for everything it
/// doesn't.
fn install_snapshot(
    state: &Arc<ServiceState>,
    status: &FollowerStatus,
    snap: Snapshot,
) -> Result<(), String> {
    if let Some(store) = &state.store {
        lock_recover(store, "store")
            .install_remote_snapshot(&snap)
            .map_err(|e| format!("snapshot install: {e}"))?;
    }
    for record in &snap.schemas {
        let schema = Schema::from_json(&record.schema_json)
            .map_err(|e| format!("snapshot schema `{}` does not parse: {e}", record.name))?;
        ensure_tenant(state, &record.tenant);
        let key = scoped_name(&record.tenant, &record.name);
        let entry = state
            .registry
            .restore(&key, record.id, record.generation, schema);
        state.caches.purge_schema(&record.tenant, entry.id);
        spawn_index_build(state, entry);
    }
    for info in state.registry.list() {
        let still_live = snap
            .schemas
            .iter()
            .any(|s| scoped_name(&s.tenant, &s.name) == info.name);
        if !still_live {
            drop_schema_locally(state, &info.name);
        }
    }
    state.registry.reserve_ids(snap.max_id);
    status.applied_seq.store(snap.last_seq, Ordering::SeqCst);
    status.snapshots_installed.fetch_add(1, Ordering::Relaxed);
    status.refresh_caught_up();
    ipe_obs::counter!("repl.follower.snapshots_installed", 1);
    Ok(())
}

/// Applies one live WAL record at the leader's sequence number.
fn apply_record(
    state: &Arc<ServiceState>,
    status: &FollowerStatus,
    record: WalRecord,
) -> Result<(), String> {
    if let Some(store) = &state.store {
        // The store refuses gaps and replays itself; its WAL keeps the
        // leader's sequence numbers, which is exactly the resume point.
        lock_recover(store, "store")
            .apply_remote(&record)
            .map_err(|e| format!("record seq {}: {e}", record.seq))?;
    } else if record.seq != status.applied_seq() + 1 {
        return Err(format!(
            "record seq {} does not extend applied seq {}",
            record.seq,
            status.applied_seq()
        ));
    }
    match &record.op {
        WalOp::Put {
            tenant,
            name,
            id,
            generation,
            schema_json,
        } => {
            let schema = Schema::from_json(schema_json)
                .map_err(|e| format!("replicated schema `{name}` does not parse: {e}"))?;
            ensure_tenant(state, tenant);
            let key = scoped_name(tenant, name);
            let entry = state.registry.restore(&key, *id, *generation, schema);
            state.registry.reserve_ids(*id);
            // Older generations' cached completions are keyed away already;
            // purging frees them eagerly, exactly as a local PUT does.
            state.caches.purge_schema(tenant, entry.id);
            spawn_index_build(state, entry);
        }
        WalOp::Delete { tenant, name } => drop_schema_locally(state, &scoped_name(tenant, name)),
    }
    status.note_applied(record.seq);
    Ok(())
}

/// A follower learns tenants from the records it applies: quotas are
/// node-local config (tenants.json), but the namespace itself must exist
/// for scoped reads to route.
fn ensure_tenant(state: &Arc<ServiceState>, tenant: &str) {
    if tenant != ipe_tenant::DEFAULT_TENANT && state.tenants.get(tenant).is_none() {
        let _ = state
            .tenants
            .put(tenant, ipe_tenant::TenantConfig::default());
    }
}

/// Removes every local trace of a schema the leader deleted: registry
/// entry, cached completions, loaded data, and the index sidecar. Takes
/// the scoped (`tenant/name`) registry key.
fn drop_schema_locally(state: &Arc<ServiceState>, key: &str) {
    if let Some(entry) = state.registry.remove(key) {
        state
            .caches
            .purge_schema(split_scoped(&entry.name).0, entry.id);
        if let Some(dir) = &state.data_dir {
            let _ = remove_sidecar(dir, entry.id);
        }
    }
    state.data.remove(key);
}
