//! The per-schema data registry: loaded database instances behind
//! `PUT /v1/data/:schema`.
//!
//! Each entry is generation-stamped twice: `data_generation` counts loads
//! for the same schema name (so a reload is observable), and
//! `schema_generation` pins the schema generation the data was loaded
//! *against*. A schema hot-swap bumps the registry generation, so
//! `POST /v1/query` can detect — and refuse with a `409` — data that has
//! gone stale relative to the live schema instead of evaluating against a
//! mismatched class universe.

use ipe_oodb::Database;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

type Map = HashMap<String, Arc<DataEntry>>;

/// Read-locks the map, recovering from poisoning (a panicking request
/// handler elsewhere must not brick the data plane; the map is valid at
/// every point a panic can interleave).
fn read_recover(lock: &RwLock<Map>) -> RwLockReadGuard<'_, Map> {
    lock.read().unwrap_or_else(|poisoned| {
        ipe_obs::counter!("service.lock.poison_recovered", 1);
        poisoned.into_inner()
    })
}

/// Write-locks the map, recovering from poisoning (see [`read_recover`]).
fn write_recover(lock: &RwLock<Map>) -> RwLockWriteGuard<'_, Map> {
    lock.write().unwrap_or_else(|poisoned| {
        ipe_obs::counter!("service.lock.poison_recovered", 1);
        poisoned.into_inner()
    })
}

/// One loaded database instance.
pub struct DataEntry {
    /// Registry name of the schema the data belongs to.
    pub schema_name: String,
    /// The schema's stable registry id at load time.
    pub schema_id: u64,
    /// The schema generation the data was loaded against.
    pub schema_generation: u64,
    /// Load counter for this name (1 for the first load).
    pub data_generation: u64,
    /// How the instance was produced: `"spec"` (explicit bulk JSON) or
    /// `"gen"` (synthetic generation).
    pub source: &'static str,
    /// The loaded instance. The database holds its own `Arc<Schema>`, so
    /// the entry stays valid even after the schema registry moves on.
    pub db: Arc<Database>,
}

/// Thread-safe map from schema name to its loaded data.
#[derive(Default)]
pub struct DataRegistry {
    inner: RwLock<HashMap<String, Arc<DataEntry>>>,
}

impl DataRegistry {
    /// An empty registry.
    pub fn new() -> DataRegistry {
        DataRegistry::default()
    }

    /// Installs a loaded database for `schema_name`, replacing any
    /// previous instance and bumping the per-name data generation.
    pub fn insert(
        &self,
        schema_name: &str,
        schema_id: u64,
        schema_generation: u64,
        source: &'static str,
        db: Database,
    ) -> Arc<DataEntry> {
        let mut map = write_recover(&self.inner);
        let data_generation = map
            .get(schema_name)
            .map(|prev| prev.data_generation + 1)
            .unwrap_or(1);
        let entry = Arc::new(DataEntry {
            schema_name: schema_name.to_owned(),
            schema_id,
            schema_generation,
            data_generation,
            source,
            db: Arc::new(db),
        });
        map.insert(schema_name.to_owned(), Arc::clone(&entry));
        ipe_obs::counter!("service.data.loads", 1);
        entry
    }

    /// The loaded data for `schema_name`, if any.
    pub fn get(&self, schema_name: &str) -> Option<Arc<DataEntry>> {
        read_recover(&self.inner).get(schema_name).cloned()
    }

    /// Drops the loaded data for `schema_name`, returning the removed
    /// entry.
    pub fn remove(&self, schema_name: &str) -> Option<Arc<DataEntry>> {
        write_recover(&self.inner).remove(schema_name)
    }

    /// Number of loaded instances.
    pub fn len(&self) -> usize {
        read_recover(&self.inner).len()
    }

    /// Whether no data is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn db() -> Database {
        Database::new(StdArc::new(ipe_schema::fixtures::university()))
    }

    #[test]
    fn insert_bumps_data_generation_per_name() {
        let reg = DataRegistry::new();
        let a = reg.insert("default", 1, 1, "spec", db());
        assert_eq!(a.data_generation, 1);
        let b = reg.insert("default", 1, 2, "gen", db());
        assert_eq!(b.data_generation, 2);
        assert_eq!(b.schema_generation, 2);
        let c = reg.insert("other", 2, 1, "spec", db());
        assert_eq!(c.data_generation, 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn get_and_remove_round_trip() {
        let reg = DataRegistry::new();
        assert!(reg.get("default").is_none());
        reg.insert("default", 1, 1, "spec", db());
        assert!(reg.get("default").is_some());
        let removed = reg.remove("default").unwrap();
        assert_eq!(removed.schema_name, "default");
        assert!(reg.is_empty());
    }
}
