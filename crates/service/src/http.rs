//! Minimal HTTP/1.1 framing over `std::net::TcpStream`: just enough for a
//! localhost JSON service — request/status lines, headers, Content-Length
//! bodies, and keep-alive. No chunked encoding, no TLS, no async.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Exceeding it
/// is answered `431`.
const MAX_HEAD: usize = 64 * 1024;
/// Upper bound on a request body (schema uploads are the largest payload).
/// A declared `Content-Length` beyond it is answered `413` without reading
/// the body.
const MAX_BODY: usize = 32 * 1024 * 1024;
/// Upper bound on the number of header lines; more is answered `431`.
const MAX_HEADER_LINES: usize = 100;
/// Upper bound on one head line (request line or header); more is `431`.
const MAX_HEAD_LINE: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `PUT`, ...).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// The query string (without the `?`), empty when absent.
    pub query: String,
    /// The `x-ipe-trace-id` request header, verbatim, when present.
    pub trace_id: Option<String>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The request body (empty unless Content-Length was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 text, or an error message for the 400 response.
    pub fn text(&self) -> Result<&str, &'static str> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8")
    }

    /// The value of a `name=value` query parameter, if present. No
    /// percent-decoding — the service's parameters are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A full request was framed.
    Ok(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not HTTP or exceed the configured caps;
    /// the connection should get the paired status (`400`, `413`, or
    /// `431`) and be dropped.
    Malformed(u16, &'static str),
    /// A socket timeout or I/O error.
    Err(io::Error),
}

/// Shorthand for the reject outcomes.
fn reject(status: u16, msg: &'static str) -> ReadOutcome {
    ReadOutcome::Malformed(status, msg)
}

/// Reads one request from `stream`. Blocking; honours the stream's
/// configured read timeout (a timeout surfaces as [`ReadOutcome::Err`]).
pub fn read_request(stream: &mut TcpStream) -> ReadOutcome {
    // Read until the end of the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return reject(431, "request head too large");
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    reject(400, "connection closed mid-request")
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return ReadOutcome::Err(e),
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return reject(400, "request head is not valid UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_HEAD_LINE {
        return reject(431, "request line too long");
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return reject(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return reject(400, "unsupported HTTP version");
    }
    let mut content_length: Option<usize> = None;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = version == "HTTP/1.1";
    let mut trace_id: Option<String> = None;
    let mut header_lines = 0usize;
    for line in lines {
        header_lines += 1;
        if header_lines > MAX_HEADER_LINES {
            return reject(431, "too many header lines");
        }
        if line.len() > MAX_HEAD_LINE {
            return reject(431, "header line too long");
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return reject(400, "bad Content-Length");
            };
            // Identical duplicates collapse (they may come from proxies
            // merging frames); *conflicting* duplicates are a smuggling
            // vector and kill the request.
            match content_length {
                Some(prev) if prev != n => {
                    return reject(400, "conflicting duplicate Content-Length headers");
                }
                _ => {}
            }
            if n > MAX_BODY {
                return reject(413, "request body too large");
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-ipe-trace-id") {
            trace_id = Some(value.to_owned());
        }
    }
    let content_length = content_length.unwrap_or(0);
    // The body: whatever followed the head in `buf`, plus the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return reject(400, "connection closed mid-body"),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return ReadOutcome::Err(e),
        }
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    ReadOutcome::Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        trace_id,
        keep_alive,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response with a JSON (or plain-text) body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, keep_alive, &[])
}

/// Like [`write_response`], with additional response headers (e.g. the
/// `x-ipe-trace-id` echo). Header values must be line-safe; the caller
/// guarantees it.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    use std::fmt::Write as _;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 client with keep-alive, for the load
/// generator, the smoke test, and the integration tests.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`). Connects lazily.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            stream: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. Reconnects once if
    /// the kept-alive connection went away.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request_with(method, path, body, &[])
            .map(|r| (r.status, r.body))
    }

    /// Like [`Client::request`], sending additional request headers and
    /// returning the full response including its headers (names
    /// lower-cased).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, body, headers) {
            Ok(r) => Ok(r),
            Err(_) => {
                // The pooled connection may have been closed; retry fresh.
                self.stream = None;
                self.try_request(method, path, body, headers)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        use std::fmt::Write as _;
        let stream = self.connect()?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ipe\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            match stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before response head",
                    ))
                }
                n => buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head_text = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head_text.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut response_headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            response_headers.push((name.to_ascii_lowercase(), value.to_owned()));
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            match stream.read(&mut chunk)? {
                0 => break,
                n => body.extend_from_slice(&chunk[..n]),
            }
        }
        body.truncate(content_length);
        if !keep_alive {
            self.stream = None;
        }
        String::from_utf8(body)
            .map(|body| ClientResponse {
                status,
                headers: response_headers,
                body,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))
    }
}

/// A full response as read by [`Client::request_with`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}
