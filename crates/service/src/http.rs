//! Minimal HTTP/1.1 framing: just enough for a localhost JSON service —
//! request/status lines, headers, Content-Length bodies, keep-alive, and
//! percent-decoded targets. No chunked encoding, no TLS, no async.
//!
//! The core is [`parse_request`], a pure incremental parser over a byte
//! buffer: it either frames one complete request (reporting how many
//! bytes it consumed, so pipelined bytes after the request are preserved
//! for the next call), asks for more bytes, or rejects the prefix with
//! the HTTP status the connection should die with. The reactor drives it
//! off readiness events; [`read_request`] wraps it for blocking streams
//! with an explicit carry-over buffer per connection.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Exceeding it
/// is answered `431`.
const MAX_HEAD: usize = 64 * 1024;
/// Upper bound on a request body (schema uploads are the largest payload).
/// A declared `Content-Length` beyond it is answered `413` without reading
/// the body.
const MAX_BODY: usize = 32 * 1024 * 1024;
/// Upper bound on the number of header lines; more is answered `431`.
const MAX_HEADER_LINES: usize = 100;
/// Upper bound on one head line (request line or header); more is `431`.
const MAX_HEAD_LINE: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `PUT`, ...).
    pub method: String,
    /// Percent-decoded path with any query string stripped.
    pub path: String,
    /// The raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Percent-decoded `name=value` query parameters, in order.
    pub params: Vec<(String, String)>,
    /// The `x-ipe-trace-id` request header, verbatim, when present.
    pub trace_id: Option<String>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The request body (empty unless Content-Length was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 text, or an error message for the 400 response.
    pub fn text(&self) -> Result<&str, &'static str> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8")
    }

    /// The value of a `name=value` query parameter, if present.
    /// Percent-escapes were decoded at parse time (a malformed escape
    /// rejected the whole request with a `400`).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }
}

/// Decodes the minimal `%XX` percent-escapes of a request target. `None`
/// when an escape is truncated, has non-hex digits, or decodes to invalid
/// UTF-8 — all of which the caller must answer with a `400`. `+` is left
/// alone: the service's parameters are tokens, not form submissions.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_owned());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = hex_val(*bytes.get(i + 1)?)?;
            let lo = hex_val(*bytes.get(i + 2)?)?;
            out.push(hi * 16 + lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// What [`parse_request`] concluded about the front of the buffer.
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffer holds a prefix of a request; read more bytes.
    Incomplete,
    /// One full request was framed; `consumed` bytes belong to it and any
    /// remainder is the start of the next (pipelined) request.
    Ok {
        /// The framed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The bytes are not HTTP or exceed the configured caps; the
    /// connection should get the paired status (`400`, `413`, or `431`)
    /// and be dropped.
    Malformed(u16, &'static str),
}

/// Shorthand for the reject outcomes.
fn reject(status: u16, msg: &'static str) -> ParseOutcome {
    ParseOutcome::Malformed(status, msg)
}

/// Incrementally parses one request from the front of `buf`. Pure: never
/// touches a socket, never consumes bytes (the caller drains `consumed`
/// on [`ParseOutcome::Ok`]). Bytes past the framed request are the next
/// pipelined request and must be preserved by the caller.
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let Some(head_end) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD {
            reject(431, "request head too large")
        } else {
            ParseOutcome::Incomplete
        };
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return reject(400, "request head is not valid UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_HEAD_LINE {
        return reject(431, "request line too long");
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return reject(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return reject(400, "unsupported HTTP version");
    }
    let mut content_length: Option<usize> = None;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = version == "HTTP/1.1";
    let mut trace_id: Option<String> = None;
    let mut header_lines = 0usize;
    for line in lines {
        header_lines += 1;
        if header_lines > MAX_HEADER_LINES {
            return reject(431, "too many header lines");
        }
        if line.len() > MAX_HEAD_LINE {
            return reject(431, "header line too long");
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return reject(400, "bad Content-Length");
            };
            // Identical duplicates collapse (they may come from proxies
            // merging frames); *conflicting* duplicates are a smuggling
            // vector and kill the request.
            match content_length {
                Some(prev) if prev != n => {
                    return reject(400, "conflicting duplicate Content-Length headers");
                }
                _ => {}
            }
            if n > MAX_BODY {
                return reject(413, "request body too large");
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-ipe-trace-id") {
            trace_id = Some(value.to_owned());
        }
    }
    let content_length = content_length.unwrap_or(0);
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    // Consume exactly this request's bytes: anything after `total` is the
    // next pipelined request and stays in the buffer.
    let body = buf[body_start..total].to_vec();
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let Some(path) = percent_decode(raw_path) else {
        return reject(400, "malformed percent-escape in request path");
    };
    let mut params = Vec::new();
    for pair in raw_query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
            return reject(400, "malformed percent-escape in query parameter");
        };
        params.push((k, v));
    }
    ParseOutcome::Ok {
        request: Request {
            method: method.to_ascii_uppercase(),
            path,
            query: raw_query.to_owned(),
            params,
            trace_id,
            keep_alive,
            body,
        },
        consumed: total,
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A full request was framed.
    Ok(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not HTTP or exceed the configured caps;
    /// the connection should get the paired status (`400`, `413`, or
    /// `431`) and be dropped.
    Malformed(u16, &'static str),
    /// A socket timeout or I/O error.
    Err(io::Error),
}

/// Reads one request from `stream`, blocking; honours the stream's
/// configured read timeout (a timeout surfaces as [`ReadOutcome::Err`]).
///
/// `carry` is this connection's leftover buffer: bytes read past the
/// previous request's body (pipelined requests) are consumed from it
/// first and any over-read of *this* request is left in it for the next
/// call. Pass the same buffer for the lifetime of the connection — a
/// fresh buffer per call silently corrupts pipelined traffic.
pub fn read_request(stream: &mut TcpStream, carry: &mut Vec<u8>) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(carry) {
            ParseOutcome::Ok { request, consumed } => {
                carry.drain(..consumed);
                return ReadOutcome::Ok(request);
            }
            ParseOutcome::Malformed(status, msg) => {
                carry.clear();
                return ReadOutcome::Malformed(status, msg);
            }
            ParseOutcome::Incomplete => match stream.read(&mut chunk) {
                Ok(0) => {
                    return if carry.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        carry.clear();
                        ReadOutcome::Malformed(400, "connection closed mid-request")
                    };
                }
                Ok(n) => carry.extend_from_slice(&chunk[..n]),
                Err(e) => return ReadOutcome::Err(e),
            },
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders one response (status line, headers, body) into wire bytes.
/// This is the single serialization point shared by the reactor's
/// in-memory write buffers and the blocking [`write_response`] helpers.
pub fn render_response(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    use std::fmt::Write as _;
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes one response with a JSON (or plain-text) body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, keep_alive, &[])
}

/// Like [`write_response`], with additional response headers (e.g. the
/// `x-ipe-trace-id` echo). Header values must be line-safe; the caller
/// guarantees it.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let bytes = render_response(status, content_type, body, keep_alive, extra_headers);
    stream.write_all(&bytes)?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 client with keep-alive, for the load
/// generator, the smoke test, and the integration tests.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`). Connects lazily.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            stream: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. Reconnects once if
    /// the kept-alive connection went away.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request_with(method, path, body, &[])
            .map(|r| (r.status, r.body))
    }

    /// Like [`Client::request`], sending additional request headers and
    /// returning the full response including its headers (names
    /// lower-cased).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, body, headers) {
            Ok(r) => Ok(r),
            Err(_) => {
                // The pooled connection may have been closed; retry fresh.
                self.stream = None;
                self.try_request(method, path, body, headers)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        use std::fmt::Write as _;
        let stream = self.connect()?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ipe\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            match stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before response head",
                    ))
                }
                n => buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head_text = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head_text.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut response_headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            response_headers.push((name.to_ascii_lowercase(), value.to_owned()));
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            match stream.read(&mut chunk)? {
                0 => break,
                n => body.extend_from_slice(&chunk[..n]),
            }
        }
        body.truncate(content_length);
        if !keep_alive {
            self.stream = None;
        }
        String::from_utf8(body)
            .map(|body| ClientResponse {
                status,
                headers: response_headers,
                body,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))
    }
}

/// A full response as read by [`Client::request_with`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            ParseOutcome::Ok { request, consumed } => (request, consumed),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn parses_one_request_and_reports_exact_consumption() {
        let wire = b"POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}";
        let (req, consumed) = parse_ok(wire);
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/complete");
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive);
    }

    /// The pipelining regression: bytes past the first request's body
    /// must NOT be consumed with it.
    #[test]
    fn pipelined_requests_are_framed_one_at_a_time() {
        let first = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec();
        let second = b"GET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut wire = first.clone();
        wire.extend_from_slice(&second);
        let (req, consumed) = parse_ok(&wire);
        assert_eq!(req.path, "/a");
        assert_eq!(req.body, b"abc");
        assert_eq!(consumed, first.len(), "must stop at the body boundary");
        let (req2, consumed2) = parse_ok(&wire[consumed..]);
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        assert!(matches!(parse_request(wire), ParseOutcome::Incomplete));
        assert!(matches!(
            parse_request(b"GET /a HT"),
            ParseOutcome::Incomplete
        ));
        assert!(matches!(parse_request(b""), ParseOutcome::Incomplete));
    }

    #[test]
    fn percent_escapes_decode_in_path_and_params() {
        let (req, _) =
            parse_ok(b"GET /v1/schemas/my%20uni?format=prom%65theus&x=a%2Bb HTTP/1.1\r\n\r\n");
        assert_eq!(req.path, "/v1/schemas/my uni");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some("a+b"));
        assert_eq!(req.query_param("absent"), None);
    }

    #[test]
    fn malformed_percent_escapes_are_400() {
        for target in ["/v1/schemas/bad%zz", "/v1/schemas/trunc%2", "/x?k=%fz"] {
            let wire = format!("GET {target} HTTP/1.1\r\n\r\n");
            match parse_request(wire.as_bytes()) {
                ParseOutcome::Malformed(400, msg) => {
                    assert!(msg.contains("percent-escape"), "{msg}")
                }
                other => panic!("{target}: expected 400, got {other:?}"),
            }
        }
        // Escapes decoding to invalid UTF-8 are rejected, not mangled.
        match parse_request(b"GET /v1/schemas/%ff%fe HTTP/1.1\r\n\r\n") {
            ParseOutcome::Malformed(400, _) => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn caps_reject_with_the_paired_status() {
        let mut big_head = b"GET / HTTP/1.1\r\nX: ".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', MAX_HEAD + 1));
        assert!(matches!(
            parse_request(&big_head),
            ParseOutcome::Malformed(431, _)
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_request(huge_body.as_bytes()),
            ParseOutcome::Malformed(413, _)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n"),
            ParseOutcome::Malformed(400, _)
        ));
    }

    /// The blocking wrapper preserves over-read bytes in the carry buffer
    /// across calls — the pipelining fix for blocking connections.
    #[test]
    fn read_request_carries_leftover_bytes() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Both requests land in one write (likely one segment).
            s.write_all(b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n")
                .unwrap();
            std::mem::forget(s); // keep the socket open past thread exit
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut carry = Vec::new();
        let ReadOutcome::Ok(first) = read_request(&mut conn, &mut carry) else {
            panic!("first request did not frame");
        };
        assert_eq!(
            (first.path.as_str(), first.body.as_slice()),
            ("/a", &b"abc"[..])
        );
        let ReadOutcome::Ok(second) = read_request(&mut conn, &mut carry) else {
            panic!("second (pipelined) request was lost");
        };
        assert_eq!(second.path, "/b");
        assert!(carry.is_empty());
        writer.join().unwrap();
    }
}
