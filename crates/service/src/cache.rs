//! The sharded completion cache: a hand-rolled LRU behind `N` mutex
//! shards, partitioned per tenant with independent byte budgets.
//!
//! Keys carry the owning schema's `(id, generation)` pair, so a hot-swap
//! in the [`crate::SchemaRegistry`] invalidates every cached result of the
//! old schema version without touching the cache at all: the new
//! generation simply never collides with the old keys. [`purge_schema`]
//! additionally drops the stale entries eagerly so a reload frees memory
//! immediately instead of waiting for LRU pressure.
//!
//! Eviction is *byte-budgeted*: every insert declares the entry's
//! approximate heap weight, and a shard evicts least-recently-used
//! entries until the declared bytes fit the shard's budget (an entry
//! cap remains as a secondary backstop for zero-weight inserts). Each
//! tenant owns a private [`CompletionCache`] inside
//! [`CachePartitions`], so one tenant's churn can never push another
//! tenant's warm entries out.
//!
//! [`purge_schema`]: ShardedLru::purge_schema

use ipe_core::{CompletionConfig, Pruning, SearchOutcome};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cache key for one memoized completion run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry id of the schema (stable across hot-swaps).
    pub schema_id: u64,
    /// Registry generation of the schema (bumped by every hot-swap).
    pub generation: u64,
    /// The query in normalized textual form (`ast.to_string()`), so
    /// `ta ~ name` and `ta~name` share an entry.
    pub query: String,
    /// Fingerprint of the [`CompletionConfig`], see [`config_fingerprint`].
    pub fingerprint: u64,
}

/// A stable 64-bit digest of every field of a [`CompletionConfig`] that
/// can change the result set. Two configs with equal fingerprints produce
/// identical completions on the same schema and query.
pub fn config_fingerprint(cfg: &CompletionConfig) -> u64 {
    let mut h = DefaultHasher::new();
    cfg.e.hash(&mut h);
    let pruning: u8 = match cfg.pruning {
        Pruning::None => 0,
        Pruning::Paper => 1,
        Pruning::PaperNoCaution => 2,
        Pruning::Safe => 3,
    };
    pruning.hash(&mut h);
    cfg.inheritance_criterion.hash(&mut h);
    cfg.max_depth.hash(&mut h);
    cfg.max_results.hash(&mut h);
    cfg.prefer_specific.hash(&mut h);
    // Exclusion sets are order-insensitive.
    let mut excluded: Vec<usize> = cfg.excluded_classes.iter().map(|c| c.index()).collect();
    excluded.sort_unstable();
    excluded.hash(&mut h);
    h.finish()
}

/// Point-in-time cache statistics, for `/metrics` and tests.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU pressure (not by [`ShardedLru::purge_schema`]).
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Approximate bytes held by live entries, as declared at insertion
    /// (see [`ShardedLru::insert_weighted`] and [`entry_weight`]).
    pub bytes: u64,
}

/// Approximate heap footprint of one completion-cache entry: the key's
/// inline size plus its query string, and the outcome's completion
/// vectors. An estimate for the `cache.bytes` gauge, not an allocator
/// measurement.
pub fn entry_weight(key: &CacheKey, outcome: &SearchOutcome) -> usize {
    use std::mem::size_of;
    let completions: usize = outcome
        .completions
        .iter()
        .map(|c| size_of::<ipe_core::Completion>() + c.edges.len() * size_of::<ipe_schema::RelId>())
        .sum();
    size_of::<CacheKey>() + key.query.len() + size_of::<SearchOutcome>() + completions
}

/// Sentinel for "no node" in the intrusive lists.
const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    /// Declared entry weight for the byte gauge.
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One LRU shard: hash map into a slab of doubly-linked nodes ordered
/// most-recently-used first.
struct Shard<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    /// Sum of the live nodes' declared weights.
    bytes: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    /// Detaches node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.nodes[i].value.clone())
    }

    /// Drops the least-recently-used entry. Must not be called on an
    /// empty shard.
    fn evict_tail(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict_tail on an empty shard");
        self.unlink(victim);
        self.bytes -= self.nodes[victim].bytes as u64;
        self.map.remove(&self.nodes[victim].key);
        self.free.push(victim);
    }

    /// Inserts or refreshes, then enforces both limits: the entry cap
    /// (a backstop for zero-weight inserts) and the byte budget
    /// (`budget == 0` = unlimited). Returns how many entries were
    /// evicted. An entry whose own weight exceeds the whole budget is
    /// refused outright — caching it is pointless and letting it in
    /// would churn every warm entry on its way through.
    fn insert(&mut self, key: K, value: V, bytes: usize, capacity: usize, budget: u64) -> u64 {
        let mut evicted = 0u64;
        if budget > 0 && bytes as u64 > budget {
            // A stale, smaller version of the key must still die: the
            // caller just computed a fresher result we cannot hold.
            if let Some(&i) = self.map.get(&key) {
                self.unlink(i);
                self.bytes -= self.nodes[i].bytes as u64;
                self.map.remove(&self.nodes[i].key);
                self.free.push(i);
                return 1;
            }
            return 0;
        }
        if let Some(&i) = self.map.get(&key) {
            self.bytes = self.bytes - self.nodes[i].bytes as u64 + bytes as u64;
            self.nodes[i].value = value;
            self.nodes[i].bytes = bytes;
            self.unlink(i);
            self.link_front(i);
        } else {
            if self.map.len() >= capacity {
                self.evict_tail();
                evicted += 1;
            }
            self.bytes += bytes as u64;
            let node = Node {
                key: key.clone(),
                value,
                bytes,
                prev: NIL,
                next: NIL,
            };
            let i = match self.free.pop() {
                Some(slot) => {
                    self.nodes[slot] = node;
                    slot
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            self.link_front(i);
            self.map.insert(key, i);
        }
        if budget > 0 {
            while self.bytes > budget && self.tail != NIL {
                self.evict_tail();
                evicted += 1;
            }
        }
        evicted
    }

    /// Removes every entry matching `pred`; returns how many were dropped.
    fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> u64 {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        let n = victims.len() as u64;
        for i in victims {
            self.unlink(i);
            self.bytes -= self.nodes[i].bytes as u64;
            self.map.remove(&self.nodes[i].key);
            self.free.push(i);
        }
        n
    }

    /// Keys in most-recently-used-first order (test helper).
    #[cfg(test)]
    fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.nodes[i].key.clone());
            i = self.nodes[i].next;
        }
        out
    }
}

/// A sharded LRU cache: keys are hashed onto one of `shards` independent
/// mutex-protected LRU maps, so concurrent lookups on different shards
/// never contend. Values are cheap clones (the service stores
/// `Arc<SearchOutcome>`).
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard capacity; total capacity is `shards.len() * per_shard`.
    per_shard: usize,
    /// Per-shard byte budget (0 = unlimited). Atomic so a tenant's
    /// budget can be re-configured on a live partition; enforced at the
    /// next insert.
    per_shard_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The service's concrete cache type: memoized completion outcomes.
pub type CompletionCache = ShardedLru<CacheKey, Arc<SearchOutcome>>;

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of roughly `capacity` entries over `shards` shards (both
    /// clamped to at least 1; `shards` is rounded up to a power of two so
    /// shard selection is a mask), with no byte budget.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_byte_budget(capacity, shards, 0)
    }

    /// Like [`ShardedLru::new`] with a byte budget across all shards
    /// (0 = unlimited). The budget splits evenly per shard, so a skewed
    /// key distribution can evict slightly before the global figure is
    /// reached — the budget is a ceiling, never exceeded.
    pub fn with_byte_budget(capacity: usize, shards: usize, budget_bytes: u64) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        let per_shard_bytes = budget_bytes.div_ceil(shards as u64);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard,
            per_shard_bytes: AtomicU64::new(per_shard_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Replaces the byte budget (0 = unlimited). Takes effect on the
    /// next insert; a shrink does not eagerly evict.
    pub fn set_byte_budget(&self, budget_bytes: u64) {
        self.per_shard_bytes.store(
            budget_bytes.div_ceil(self.shards.len() as u64),
            Ordering::Relaxed,
        );
    }

    /// The configured byte budget across all shards (0 = unlimited).
    pub fn byte_budget(&self) -> u64 {
        self.per_shard_bytes.load(Ordering::Relaxed) * self.shards.len() as u64
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Locks a shard, recovering from poisoning: the cache is advisory
    /// (worst case a stale recency order), so dying on a lock a panicking
    /// request poisoned would trade a cosmetic inconsistency for an
    /// outage.
    fn lock_shard<'a>(shard: &'a Mutex<Shard<K, V>>) -> std::sync::MutexGuard<'a, Shard<K, V>> {
        shard.lock().unwrap_or_else(|poisoned| {
            ipe_obs::counter!("service.lock.poison_recovered", 1);
            poisoned.into_inner()
        })
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = Self::lock_shard(self.shard_of(key)).get(key);
        match &got {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ipe_obs::counter!("service.cache.hit", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                ipe_obs::counter!("service.cache.miss", 1);
            }
        }
        got
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used entry when full. The entry counts zero bytes toward the byte
    /// gauge; use [`ShardedLru::insert_weighted`] to account its size.
    pub fn insert(&self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// Like [`ShardedLru::insert`], declaring the entry's approximate
    /// heap footprint for the `cache.bytes` gauge (see [`entry_weight`]).
    pub fn insert_weighted(&self, key: K, value: V, bytes: usize) {
        let budget = self.per_shard_bytes.load(Ordering::Relaxed);
        let evicted =
            Self::lock_shard(self.shard_of(&key)).insert(key, value, bytes, self.per_shard, budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            ipe_obs::counter!("service.cache.evict", evicted);
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock_shard(s).map.len())
            .sum()
    }

    /// Approximate bytes held by live entries across all shards, as
    /// declared at insertion.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| Self::lock_shard(s).bytes).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            bytes: self.bytes(),
        }
    }
}

impl CompletionCache {
    /// Eagerly drops every entry belonging to `schema_id` (all
    /// generations). Generation keying already guarantees correctness on
    /// hot-swap; this frees the dead entries' memory immediately. Returns
    /// the number of entries dropped.
    pub fn purge_schema(&self, schema_id: u64) -> u64 {
        self.shards
            .iter()
            .map(|s| ShardedLru::lock_shard(s).retain(|k| k.schema_id != schema_id))
            .sum()
    }
}

/// Per-tenant completion-cache partitions. Every tenant gets a private
/// [`CompletionCache`] with its own byte budget, so cache pressure
/// never crosses tenant boundaries: a noisy tenant churning its
/// partition evicts only its own entries. The `default` tenant's
/// partition is created eagerly and never dropped.
pub struct CachePartitions {
    inner: RwLock<HashMap<String, Arc<CompletionCache>>>,
    /// Entry capacity of each partition (the zero-weight backstop).
    capacity: usize,
    /// Shard count of each partition.
    shards: usize,
    /// Byte budget applied when a tenant doesn't set its own.
    default_budget: u64,
}

impl CachePartitions {
    /// A partition set where each partition holds up to `capacity`
    /// entries over `shards` shards, budgeted at `default_budget` bytes
    /// unless the tenant overrides it (0 = unlimited). The `default`
    /// partition is created immediately.
    pub fn new(capacity: usize, shards: usize, default_budget: u64) -> CachePartitions {
        let parts = CachePartitions {
            inner: RwLock::new(HashMap::new()),
            capacity,
            shards,
            default_budget,
        };
        parts.ensure(ipe_tenant::DEFAULT_TENANT, 0);
        parts
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<CompletionCache>>> {
        self.inner.read().unwrap_or_else(|poisoned| {
            ipe_obs::counter!("service.lock.poison_recovered", 1);
            poisoned.into_inner()
        })
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<CompletionCache>>> {
        self.inner.write().unwrap_or_else(|poisoned| {
            ipe_obs::counter!("service.lock.poison_recovered", 1);
            poisoned.into_inner()
        })
    }

    /// Gets (or creates) `tenant`'s partition, applying `budget_bytes`
    /// (0 = the partition-set default). An existing partition is
    /// re-budgeted in place, entries intact.
    pub fn ensure(&self, tenant: &str, budget_bytes: u64) -> Arc<CompletionCache> {
        let budget = if budget_bytes > 0 {
            budget_bytes
        } else {
            self.default_budget
        };
        if let Some(cache) = self.read().get(tenant) {
            cache.set_byte_budget(budget);
            return Arc::clone(cache);
        }
        let mut map = self.write();
        if let Some(cache) = map.get(tenant) {
            cache.set_byte_budget(budget);
            return Arc::clone(cache);
        }
        let cache = Arc::new(CompletionCache::with_byte_budget(
            self.capacity,
            self.shards,
            budget,
        ));
        map.insert(tenant.to_owned(), Arc::clone(&cache));
        cache
    }

    /// The partition serving `tenant`. Unknown tenants fall back to a
    /// fresh default-budget partition (requests for a tenant created on
    /// the leader may reach a follower before its registry row does).
    pub fn partition(&self, tenant: &str) -> Arc<CompletionCache> {
        if let Some(cache) = self.read().get(tenant) {
            return Arc::clone(cache);
        }
        self.ensure(tenant, 0)
    }

    /// Drops `tenant`'s partition outright, returning how many entries
    /// and declared bytes died with it. The `default` partition is
    /// reset (replaced by an empty one) rather than removed.
    pub fn drop_partition(&self, tenant: &str) -> (u64, u64) {
        let mut map = self.write();
        let Some(cache) = map.remove(tenant) else {
            return (0, 0);
        };
        let (entries, bytes) = (cache.len() as u64, cache.bytes());
        if tenant == ipe_tenant::DEFAULT_TENANT {
            map.insert(
                tenant.to_owned(),
                Arc::new(CompletionCache::with_byte_budget(
                    self.capacity,
                    self.shards,
                    cache.byte_budget(),
                )),
            );
        }
        (entries, bytes)
    }

    /// Eagerly drops `schema_id`'s entries from `tenant`'s partition
    /// (schema ids are registry-global, so one partition suffices).
    pub fn purge_schema(&self, tenant: &str, schema_id: u64) -> u64 {
        match self.read().get(tenant) {
            Some(cache) => cache.purge_schema(schema_id),
            None => 0,
        }
    }

    /// Per-tenant statistics, name-ordered — the `/metrics` rows.
    pub fn stats_by_tenant(&self) -> Vec<(String, CacheStats)> {
        let mut rows: Vec<(String, CacheStats)> = self
            .read()
            .iter()
            .map(|(name, cache)| (name.clone(), cache.stats()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Statistics summed across every partition (the legacy aggregate
    /// `cache` row in `/metrics`).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, s) in self.stats_by_tenant() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.bytes += s.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str) -> CacheKey {
        CacheKey {
            schema_id: 1,
            generation: 1,
            query: q.to_owned(),
            fingerprint: 0,
        }
    }

    /// Single-shard cache so the LRU order is fully observable.
    fn tiny(capacity: usize) -> ShardedLru<CacheKey, u32> {
        ShardedLru::new(capacity, 1)
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = tiny(3);
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        cache.insert(key("c"), 3);
        // Touch `a` so `b` becomes the LRU entry.
        assert_eq!(cache.get(&key("a")), Some(1));
        cache.insert(key("d"), 4);
        assert_eq!(cache.get(&key("b")), None, "b was least recently used");
        assert_eq!(cache.get(&key("a")), Some(1));
        assert_eq!(cache.get(&key("c")), Some(3));
        assert_eq!(cache.get(&key("d")), Some(4));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_order_is_exact_over_a_longer_run() {
        let cache = tiny(4);
        for (i, q) in ["a", "b", "c", "d"].iter().enumerate() {
            cache.insert(key(q), i as u32);
        }
        let mru = cache.shards[0].lock().unwrap().keys_mru();
        let queries: Vec<&str> = mru.iter().map(|k| k.query.as_str()).collect();
        assert_eq!(queries, vec!["d", "c", "b", "a"]);
        // Re-inserting an existing key refreshes, never evicts.
        cache.insert(key("b"), 9);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 0);
        // Two fresh inserts now evict exactly `a` then `c`.
        cache.insert(key("e"), 5);
        cache.insert(key("f"), 6);
        assert_eq!(cache.get(&key("a")), None);
        assert_eq!(cache.get(&key("c")), None);
        assert_eq!(cache.get(&key("b")), Some(9), "refreshed value");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn byte_gauge_tracks_insert_refresh_evict_and_purge() {
        let cache = tiny(2);
        assert_eq!(cache.bytes(), 0);
        cache.insert_weighted(key("a"), 1, 100);
        cache.insert_weighted(key("b"), 2, 50);
        assert_eq!(cache.bytes(), 150);
        assert_eq!(cache.stats().bytes, 150);
        // Refresh replaces the weight, never double-counts.
        cache.insert_weighted(key("a"), 3, 40);
        assert_eq!(cache.bytes(), 90);
        // Eviction releases the victim's weight (b is LRU).
        cache.insert_weighted(key("c"), 4, 7);
        assert_eq!(cache.bytes(), 47);
        // Purge releases everything for the schema.
        let full: CompletionCache = ShardedLru::new(8, 2);
        let outcome = Arc::new(SearchOutcome {
            completions: Vec::new(),
            stats: Default::default(),
        });
        let w = entry_weight(&key("q"), &outcome);
        assert!(w > 0, "weight counts at least the key and outcome headers");
        full.insert_weighted(key("q"), outcome, w);
        assert_eq!(full.bytes(), w as u64);
        full.purge_schema(1);
        assert_eq!(full.bytes(), 0);
    }

    #[test]
    fn byte_budget_evicts_lru_until_the_new_entry_fits() {
        // Budget 100 over one shard; skewed entry sizes.
        let cache: ShardedLru<CacheKey, u32> = ShardedLru::with_byte_budget(1024, 1, 100);
        cache.insert_weighted(key("small-1"), 1, 10);
        cache.insert_weighted(key("small-2"), 2, 10);
        cache.insert_weighted(key("big"), 3, 70);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.bytes(), 90);
        // 30 more bytes exceed the budget: the two small LRU entries go,
        // not just one — eviction is byte-driven, not entry-driven.
        cache.insert_weighted(key("medium"), 4, 30);
        assert_eq!(cache.get(&key("small-1")), None);
        assert_eq!(cache.get(&key("small-2")), None);
        assert_eq!(cache.get(&key("big")), Some(3));
        assert_eq!(cache.get(&key("medium")), Some(4));
        assert!(cache.bytes() <= 100);
        assert_eq!(cache.stats().evictions, 2);
        // An entry larger than the whole budget is refused without
        // disturbing the warm entries.
        cache.insert_weighted(key("oversize"), 5, 1000);
        assert_eq!(cache.get(&key("oversize")), None);
        assert_eq!(cache.get(&key("big")), Some(3), "warm survives oversize");
        assert!(cache.bytes() <= 100, "oversize insert cannot pin memory");
        // A refresh that grows past the budget evicts colder entries.
        cache.insert_weighted(key("big"), 6, 95);
        assert_eq!(cache.get(&key("big")), Some(6));
        assert_eq!(cache.get(&key("medium")), None);
        assert!(cache.bytes() <= 100);
    }

    #[test]
    fn partitions_isolate_tenant_churn() {
        let parts = CachePartitions::new(1024, 1, 100);
        let quiet = parts.ensure("quiet", 0);
        let noisy = parts.ensure("noisy", 0);
        let outcome = Arc::new(SearchOutcome {
            completions: Vec::new(),
            stats: Default::default(),
        });
        quiet.insert_weighted(key("warm"), outcome.clone(), 60);
        // The noisy tenant churns far past its own budget...
        for i in 0..50 {
            noisy.insert_weighted(key(&format!("churn-{i}")), outcome.clone(), 30);
        }
        assert!(noisy.bytes() <= 100);
        // ...and the quiet tenant's warm entry is untouched.
        assert!(quiet.get(&key("warm")).is_some());
        assert_eq!(quiet.stats().evictions, 0);
        // Dropping the noisy partition reports its footprint.
        let (entries, bytes) = parts.drop_partition("noisy");
        assert_eq!(entries, 3);
        assert_eq!(bytes, 90);
        // The default partition resets instead of disappearing.
        let default = parts.partition(ipe_tenant::DEFAULT_TENANT);
        default.insert_weighted(key("d"), outcome, 10);
        parts.drop_partition(ipe_tenant::DEFAULT_TENANT);
        assert_eq!(parts.partition(ipe_tenant::DEFAULT_TENANT).len(), 0);
    }

    #[test]
    fn generation_bump_is_a_different_key() {
        let cache = tiny(8);
        cache.insert(key("q"), 1);
        let mut swapped = key("q");
        swapped.generation = 2;
        assert_eq!(cache.get(&swapped), None, "new generation never collides");
        assert_eq!(cache.get(&key("q")), Some(1), "old generation untouched");
    }

    #[test]
    fn purge_drops_only_the_given_schema() {
        let cache: CompletionCache = ShardedLru::new(16, 4);
        let outcome = Arc::new(SearchOutcome {
            completions: Vec::new(),
            stats: Default::default(),
        });
        cache.insert(key("a"), outcome.clone());
        let mut other = key("b");
        other.schema_id = 2;
        cache.insert(other.clone(), outcome);
        assert_eq!(cache.purge_schema(1), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&other).is_some());
    }

    #[test]
    fn fingerprint_distinguishes_configs_but_not_exclude_order() {
        use ipe_schema::fixtures;
        let schema = fixtures::university();
        let a = schema.class_named("person").unwrap();
        let b = schema.class_named("student").unwrap();
        let base = CompletionConfig::default();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        let e2 = CompletionConfig::with_e(2);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&e2));
        let ab = CompletionConfig {
            excluded_classes: vec![a, b],
            ..Default::default()
        };
        let ba = CompletionConfig {
            excluded_classes: vec![b, a],
            ..Default::default()
        };
        assert_eq!(config_fingerprint(&ab), config_fingerprint(&ba));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&ab));
    }
}
