//! The schema registry: multiple named, versioned schemas behind `Arc`
//! with atomic hot-swap on reload.
//!
//! Readers take an `Arc<SchemaEntry>` snapshot and never block writers:
//! a reload builds a fresh entry (same stable `id`, next `generation`) and
//! swaps the map slot under a short write lock. Requests already running
//! against the old `Arc` finish on the schema version they started with.

use ipe_index::SearchIndex;
use ipe_schema::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks the map, recovering from poisoning: a panic elsewhere must
/// not condemn every future request to die on an `.expect()`. The map is
/// structurally consistent at every await-free point (inserts build the
/// entry before taking the lock), so the recovered value is always valid.
fn read_recover<K, V>(lock: &RwLock<HashMap<K, V>>) -> RwLockReadGuard<'_, HashMap<K, V>> {
    lock.read().unwrap_or_else(|poisoned| {
        ipe_obs::counter!("service.lock.poison_recovered", 1);
        poisoned.into_inner()
    })
}

/// Write-locks the map, recovering from poisoning (see [`read_recover`]).
fn write_recover<K, V>(lock: &RwLock<HashMap<K, V>>) -> RwLockWriteGuard<'_, HashMap<K, V>> {
    lock.write().unwrap_or_else(|poisoned| {
        ipe_obs::counter!("service.lock.poison_recovered", 1);
        poisoned.into_inner()
    })
}

/// One registered schema version.
#[derive(Debug)]
pub struct SchemaEntry {
    /// Registry name, unique among live schemas.
    pub name: String,
    /// Stable numeric id: survives hot-swaps, distinguishes re-created
    /// schemas of the same name from their predecessors in cache keys.
    pub id: u64,
    /// Version counter, starting at 1 and bumped by every hot-swap.
    pub generation: u64,
    /// The immutable schema itself.
    pub schema: Arc<Schema>,
    /// The search index for exactly this `(id, generation)`, installed by
    /// a background build (or a sidecar load) after the entry is already
    /// serving. Empty while the build runs — readers fall back to
    /// unindexed search, so a PUT never blocks on indexing.
    index: OnceLock<SearchIndex>,
}

impl SchemaEntry {
    fn new(name: &str, id: u64, generation: u64, schema: Schema) -> SchemaEntry {
        SchemaEntry {
            name: name.to_owned(),
            id,
            generation,
            schema: Arc::new(schema),
            index: OnceLock::new(),
        }
    }

    /// The entry's search index, once a build (or sidecar load) finished.
    pub fn index(&self) -> Option<SearchIndex> {
        self.index.get().cloned()
    }

    /// Installs a built index. First writer wins (a sidecar load and a
    /// concurrent background build may race benignly); returns whether
    /// this call installed it. Indexes that don't structurally match the
    /// schema are refused — a stale sidecar must degrade to a rebuild,
    /// never serve wrong bounds.
    pub fn set_index(&self, index: SearchIndex) -> bool {
        if !index.matches(&self.schema) {
            ipe_obs::counter!("service.index.mismatch_refused", 1);
            return false;
        }
        self.index.set(index).is_ok()
    }
}

/// Summary row for `GET /v1/schemas`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SchemaInfo {
    /// Registry name.
    pub name: String,
    /// Stable id.
    pub id: u64,
    /// Current generation.
    pub generation: u64,
    /// Class count (including primitives).
    pub classes: u64,
    /// Relationship count.
    pub relationships: u64,
}

/// A concurrent map of named, versioned schemas.
#[derive(Default)]
pub struct SchemaRegistry {
    inner: RwLock<HashMap<String, Arc<SchemaEntry>>>,
    next_id: AtomicU64,
}

impl SchemaRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Registers `schema` under `name`. A new name gets a fresh id and
    /// generation 1; an existing name keeps its id and bumps the
    /// generation (the hot-swap path). Returns the new entry.
    pub fn insert(&self, name: &str, schema: Schema) -> Arc<SchemaEntry> {
        let mut map = write_recover(&self.inner);
        let (id, generation) = match map.get(name) {
            Some(old) => (old.id, old.generation + 1),
            None => (self.next_id.fetch_add(1, Ordering::Relaxed) + 1, 1),
        };
        let entry = Arc::new(SchemaEntry::new(name, id, generation, schema));
        map.insert(name.to_owned(), entry.clone());
        entry
    }

    /// Reinstates a recovered schema exactly as it was acknowledged: `id`
    /// and `generation` come from the durable record rather than the
    /// counters, and the id counter is advanced so later inserts never
    /// collide. Subsequent [`insert`](SchemaRegistry::insert)s on `name`
    /// continue the generation sequence monotonically.
    pub fn restore(
        &self,
        name: &str,
        id: u64,
        generation: u64,
        schema: Schema,
    ) -> Arc<SchemaEntry> {
        self.next_id.fetch_max(id, Ordering::Relaxed);
        let entry = Arc::new(SchemaEntry::new(name, id, generation, schema));
        write_recover(&self.inner).insert(name.to_owned(), entry.clone());
        entry
    }

    /// Advances the id counter past `max_id`, so ids of schemas that were
    /// deleted before a crash are never reissued (their old cache keys
    /// must not alias new entries).
    pub fn reserve_ids(&self, max_id: u64) {
        self.next_id.fetch_max(max_id, Ordering::Relaxed);
    }

    /// The current entry for `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<SchemaEntry>> {
        read_recover(&self.inner).get(name).cloned()
    }

    /// Unregisters `name`, returning its final entry. In-flight requests
    /// holding the `Arc` are unaffected.
    pub fn remove(&self, name: &str) -> Option<Arc<SchemaEntry>> {
        write_recover(&self.inner).remove(name)
    }

    /// Summaries of every registered schema, sorted by name.
    pub fn list(&self) -> Vec<SchemaInfo> {
        let map = read_recover(&self.inner);
        let mut out: Vec<SchemaInfo> = map
            .values()
            .map(|e| SchemaInfo {
                name: e.name.clone(),
                id: e.id,
                generation: e.generation,
                classes: e.schema.class_count() as u64,
                relationships: e.schema.rel_count() as u64,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipe_schema::fixtures;

    #[test]
    fn hot_swap_keeps_id_and_bumps_generation() {
        let reg = SchemaRegistry::new();
        let first = reg.insert("uni", fixtures::university());
        assert_eq!((first.id, first.generation), (1, 1));
        let second = reg.insert("uni", fixtures::university());
        assert_eq!(second.id, first.id, "id is stable across reloads");
        assert_eq!(second.generation, 2);
        // The old Arc is still fully usable by in-flight requests.
        assert!(first.schema.class_count() > 0);
        assert_eq!(reg.get("uni").unwrap().generation, 2);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let reg = SchemaRegistry::new();
        let a = reg.insert("a", fixtures::university());
        let b = reg.insert("b", fixtures::assembly());
        assert_ne!(a.id, b.id);
        let names: Vec<String> = reg.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn restore_reinstates_ids_and_generations_exactly() {
        let reg = SchemaRegistry::new();
        reg.restore("uni", 5, 7, fixtures::university());
        let got = reg.get("uni").unwrap();
        assert_eq!((got.id, got.generation), (5, 7));
        // A hot-swap continues the recovered generation sequence.
        let swapped = reg.insert("uni", fixtures::university());
        assert_eq!((swapped.id, swapped.generation), (5, 8));
        // Fresh names get ids past every restored one.
        let fresh = reg.insert("other", fixtures::assembly());
        assert!(
            fresh.id > 5,
            "fresh id {} must not reuse restored ids",
            fresh.id
        );
    }

    #[test]
    fn reserve_ids_blocks_reuse_of_deleted_ids() {
        let reg = SchemaRegistry::new();
        reg.reserve_ids(9);
        let fresh = reg.insert("x", fixtures::university());
        assert_eq!(fresh.id, 10);
    }

    #[test]
    fn index_install_is_first_writer_wins_and_checks_fit() {
        use ipe_index::{IndexMode, IndexedSchema};
        let reg = SchemaRegistry::new();
        let entry = reg.insert("uni", fixtures::university());
        assert!(entry.index().is_none(), "no index before a build finishes");
        // A structurally different schema's index is refused.
        let wrong = Arc::new(IndexedSchema::build(&fixtures::assembly(), IndexMode::Off));
        assert!(!entry.set_index(wrong));
        assert!(entry.index().is_none());
        let right = Arc::new(IndexedSchema::build(&entry.schema, IndexMode::Off));
        assert!(entry.set_index(Arc::clone(&right)));
        assert!(entry.index().is_some());
        // Second install (e.g. a racing sidecar load) is a no-op.
        let again = Arc::new(IndexedSchema::build(&entry.schema, IndexMode::Off));
        assert!(!entry.set_index(again));
        // A hot-swap starts over with an un-indexed entry.
        let swapped = reg.insert("uni", fixtures::university());
        assert!(swapped.index().is_none());
    }

    #[test]
    fn remove_unregisters() {
        let reg = SchemaRegistry::new();
        reg.insert("x", fixtures::university());
        assert!(reg.remove("x").is_some());
        assert!(reg.get("x").is_none());
        assert!(reg.remove("x").is_none());
    }
}
