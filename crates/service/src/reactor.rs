//! The event-driven front end: one reactor per configured shard, each
//! owning an `SO_REUSEPORT` acceptor, an epoll instance, and every
//! connection the kernel hashes its way.
//!
//! A reactor is a single thread running a level-triggered epoll loop.
//! Each connection is a small state machine: a read buffer that carries
//! over-read bytes across requests (pipelining-safe by construction), a
//! write buffer that survives partial writes (`EPOLLOUT` re-armed only
//! while bytes are pending), and one absolute deadline — armed when a
//! request's first byte arrives and *not* refreshed by further partial
//! reads, so a slow-loris client is bounded by `request_timeout` no
//! matter how diligently it drips. Deadline expiry mid-request answers
//! `408`; expiry while idle closes silently.
//!
//! Requests are handled inline on the reactor thread: the warm-cache
//! completion path is ~1µs, so handing off to a pool would cost more in
//! scheduling than it buys. Long-running handlers (batch fan-out, query
//! evaluation) already parallelize internally with scoped threads. A
//! panicking handler is caught per request and answered `500`; the
//! reactor and its other connections keep running.
//!
//! Shutdown follows the drain protocol: on the first observation of the
//! shutdown flag a reactor stops accepting (drops its listener shard),
//! closes idle connections, and keeps serving in-flight requests until
//! their responses flush or the drain deadline (one `request_timeout`)
//! lapses. The flag is observed either inline (the reactor served the
//! `POST /v1/shutdown` itself) or via the eventfd wake the shutdown
//! caller fires at every reactor.

use crate::api::error_body;
use crate::epoll::{Event, Poller, Wake, EPOLLERR, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::http::{parse_request, render_response, ParseOutcome};
use crate::repl::{spawn_leader_stream, StreamStart};
use crate::server::{handle_request_catching, ServiceState};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token of the reactor's listener shard.
const LISTENER_TOKEN: u64 = 0;
/// Token of the reactor's shutdown eventfd.
const WAKE_TOKEN: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Cap on bytes read from one connection per readiness tick, so a single
/// fat pipe cannot starve the reactor's other connections. Level
/// triggering re-reports the fd while bytes remain.
const READ_BURST: usize = 256 * 1024;

/// Grace period granted to flush a `408` before the connection is torn
/// down regardless.
const TIMEOUT_FLUSH_GRACE: Duration = Duration::from_secs(1);

/// Per-reactor knobs, distilled from `ServiceConfig`.
pub(crate) struct ReactorConfig {
    /// Budget for one request (first byte to framed) and for idle
    /// keep-alive reaping; also the drain deadline on shutdown.
    pub request_timeout: Duration,
    /// Connections this reactor will hold live; beyond it new accepts are
    /// answered `503` immediately (the reactor-world backpressure valve).
    pub max_conns: usize,
}

/// One connection's state between readiness events.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Read carry buffer: partial requests and pipelined over-reads.
    buf: Vec<u8>,
    /// Write buffer: rendered responses not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    /// Absolute deadline (request in flight, idle reap, or 408 flush).
    deadline: Instant,
    /// A request's bytes have started arriving but it has not framed.
    mid_request: bool,
    /// Close as soon as `out` drains.
    close_after_flush: bool,
    /// A `408` was queued; the deadline now bounds its flush.
    timed_out: bool,
    /// Peer sent FIN; no more bytes will arrive.
    peer_eof: bool,
    /// Events currently registered with the poller.
    interest: u32,
    /// Set when a handler answered with a replication stream: the
    /// connection leaves the reactor and a blocking streaming thread
    /// takes the socket over.
    detach: Option<StreamStart>,
}

/// What `drive` decided about the connection.
#[derive(PartialEq)]
enum Verdict {
    Keep,
    Close,
    /// Hand the socket to a replication streaming thread: deregister it,
    /// restore blocking mode, and ship the unflushed response head along.
    Detach,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, deadline: Instant) -> Conn {
        Conn {
            stream,
            token,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            deadline,
            mid_request: false,
            close_after_flush: false,
            timed_out: false,
            peer_eof: false,
            interest: EPOLLIN | EPOLLRDHUP,
            detach: None,
        }
    }

    fn queue_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &str,
        keep_alive: bool,
        extra_headers: &[(&str, &str)],
    ) {
        let bytes = render_response(status, content_type, body, keep_alive, extra_headers);
        self.out.extend_from_slice(&bytes);
    }

    /// Drains the kernel's pending bytes into `buf`, up to the per-tick
    /// burst cap.
    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        while self.buf.len() < READ_BURST {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Frames and handles every complete request in `buf`, queuing the
    /// responses, and re-arms the deadline at request boundaries.
    fn process(&mut self, state: &Arc<ServiceState>, cfg: &ReactorConfig) {
        loop {
            if self.close_after_flush {
                // A `Connection: close` request, a malformed prefix, or
                // shutdown already sealed this connection; anything still
                // buffered is not ours to serve.
                return;
            }
            match parse_request(&self.buf) {
                ParseOutcome::Ok { request, consumed } => {
                    self.buf.drain(..consumed);
                    let draining = state.shutting_down();
                    let keep = request.keep_alive && !draining;
                    let (reply, trace_id) = handle_request_catching(state, &request);
                    if let Some(start) = reply.stream {
                        // A replication stream: hand-rolled head with no
                        // Content-Length (the body is unbounded) and
                        // Connection: close, then detach. Any pipelined
                        // bytes after this request are not ours to serve.
                        let head = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nConnection: close\r\nx-ipe-trace-id: {trace_id}\r\n\r\n",
                            reply.content_type,
                        );
                        self.out.extend_from_slice(head.as_bytes());
                        self.detach = Some(start);
                        return;
                    }
                    let mut headers: Vec<(&str, &str)> = vec![("x-ipe-trace-id", &trace_id)];
                    for (name, value) in &reply.headers {
                        headers.push((name, value));
                    }
                    self.queue_response(
                        reply.status,
                        reply.content_type,
                        &reply.body,
                        keep,
                        &headers,
                    );
                    if !keep || state.shutting_down() {
                        // Re-check the flag: this very request may have
                        // been the shutdown call.
                        self.close_after_flush = true;
                    }
                    self.mid_request = !self.buf.is_empty();
                    // A fresh budget: for the pipelined request already
                    // buffered, or for idle reaping.
                    self.deadline = Instant::now() + cfg.request_timeout;
                }
                ParseOutcome::Incomplete => {
                    if !self.buf.is_empty() && !self.mid_request {
                        // First bytes of a new request: arm the absolute
                        // deadline. Later partial reads do NOT touch it.
                        self.mid_request = true;
                        self.deadline = Instant::now() + cfg.request_timeout;
                    }
                    return;
                }
                ParseOutcome::Malformed(status, msg) => {
                    ipe_obs::counter!("service.conn.malformed", 1);
                    self.buf.clear();
                    self.queue_response(status, "application/json", &error_body(msg), false, &[]);
                    self.close_after_flush = true;
                    return;
                }
            }
        }
    }

    /// Pushes `out` into the kernel. `Ok((drained, progressed))`:
    /// `drained` when nothing is left pending, `progressed` when at
    /// least one byte moved this call — the distinction feeds the
    /// deadline (a slowly-draining sink is activity; a stalled one is
    /// not).
    fn flush(&mut self) -> io::Result<(bool, bool)> {
        let mut progressed = false;
        loop {
            if self.out_pos >= self.out.len() {
                self.out.clear();
                self.out_pos = 0;
                return Ok((true, progressed));
            }
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((false, progressed)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// One readiness tick: read what's there, frame and handle requests,
    /// flush responses, and re-arm interest.
    fn drive(
        &mut self,
        readiness: u32,
        poller: &Poller,
        state: &Arc<ServiceState>,
        cfg: &ReactorConfig,
    ) -> Verdict {
        if readiness & EPOLLERR != 0 {
            return Verdict::Close;
        }
        if readiness & (EPOLLIN | EPOLLRDHUP) != 0 && !self.peer_eof && self.fill().is_err() {
            return Verdict::Close;
        }
        self.process(state, cfg);
        if self.detach.is_some() {
            // Don't flush here: the streaming thread writes the pending
            // head itself on the restored-to-blocking socket.
            return Verdict::Detach;
        }
        match self.flush() {
            Err(_) => return Verdict::Close,
            Ok((true, _)) => {
                if self.close_after_flush {
                    return Verdict::Close;
                }
                if self.peer_eof {
                    // Every framed request is answered and the peer can
                    // send no more; a partial request left in `buf` can
                    // never complete.
                    return Verdict::Close;
                }
            }
            Ok((false, progressed)) => {
                ipe_obs::counter!("service.conn.write_backpressure", 1);
                if progressed && !self.timed_out {
                    // A slowly-draining sink is live traffic, not an idle
                    // connection: give it a fresh budget so the reaper
                    // only fires after a full timeout of zero progress.
                    // (408 flushes stay on the short grace deadline.)
                    self.deadline = Instant::now() + cfg.request_timeout;
                }
            }
        }
        let mut want = EPOLLRDHUP;
        if !self.peer_eof && !self.close_after_flush {
            want |= EPOLLIN;
        }
        if self.out_pos < self.out.len() {
            want |= EPOLLOUT;
        }
        if want != self.interest {
            if poller
                .modify(self.stream.as_raw_fd(), self.token, want)
                .is_err()
            {
                return Verdict::Close;
            }
            self.interest = want;
        }
        Verdict::Keep
    }
}

/// Runs one reactor to completion (shutdown drain finished). Never
/// panics out: an epoll-level error logs and exits the shard, and
/// per-request panics are already contained by `handle_request_catching`.
pub(crate) fn reactor_loop(
    listener: TcpListener,
    wake: Arc<Wake>,
    state: Arc<ServiceState>,
    cfg: ReactorConfig,
) {
    if let Err(e) = run(listener, &wake, &state, &cfg) {
        eprintln!("ipe-service: reactor failed: {e}");
    }
}

fn run(
    listener: TcpListener,
    wake: &Wake,
    state: &Arc<ServiceState>,
    cfg: &ReactorConfig,
) -> io::Result<()> {
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)?;
    poller.add(wake.raw_fd(), WAKE_TOKEN, EPOLLIN)?;
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut drain_deadline: Option<Instant> = None;
    let mut events = vec![Event::empty(); 256];
    loop {
        let timeout = next_timeout(&conns, drain_deadline);
        let n = poller.wait(&mut events, timeout)?;
        let mut dead: Vec<u64> = Vec::new();
        let mut detached: Vec<u64> = Vec::new();
        for ev in &events[..n] {
            match ev.token() {
                LISTENER_TOKEN => {
                    if let Some(l) = &listener {
                        accept_all(l, &poller, &mut conns, &mut next_token, state, cfg);
                    }
                }
                WAKE_TOKEN => wake.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        match conn.drive(ev.readiness(), &poller, state, cfg) {
                            Verdict::Keep => {}
                            Verdict::Close => dead.push(token),
                            Verdict::Detach => detached.push(token),
                        }
                    }
                }
            }
        }
        for token in detached {
            detach_conn(&mut conns, token, state, &poller);
        }
        reap_expired(&mut conns, &mut dead, &poller);
        for token in dead {
            close_conn(&mut conns, token, state);
        }
        if state.shutting_down() {
            if drain_deadline.is_none() {
                // First observation: stop accepting, make sure every
                // sibling reactor wakes to do the same, close idle
                // connections, and seal the rest.
                if let Some(l) = listener.take() {
                    let _ = poller.delete(l.as_raw_fd());
                }
                state.request_shutdown();
                drain_deadline = Some(Instant::now() + cfg.request_timeout);
                let idle: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| !c.mid_request && c.out_pos >= c.out.len())
                    .map(|(t, _)| *t)
                    .collect();
                for token in idle {
                    close_conn(&mut conns, token, state);
                }
                for conn in conns.values_mut() {
                    conn.close_after_flush = true;
                }
            }
            let past_deadline = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || past_deadline {
                for token in conns.keys().copied().collect::<Vec<_>>() {
                    close_conn(&mut conns, token, state);
                }
                return Ok(());
            }
        }
    }
}

/// The wait budget: the nearest connection (or drain) deadline, or forever
/// when nothing is pending.
fn next_timeout(conns: &HashMap<u64, Conn>, drain_deadline: Option<Instant>) -> Option<Duration> {
    let nearest = conns
        .values()
        .map(|c| c.deadline)
        .chain(drain_deadline)
        .min()?;
    Some(nearest.saturating_duration_since(Instant::now()))
}

/// Accepts every pending connection on the shard; beyond the live cap
/// each one is answered `503` and dropped immediately.
fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    state: &Arc<ServiceState>,
    cfg: &ReactorConfig,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if conns.len() >= cfg.max_conns {
            reject_busy(stream, state);
            continue;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        if poller
            .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
            .is_err()
        {
            continue;
        }
        conns.insert(
            token,
            Conn::new(stream, token, Instant::now() + cfg.request_timeout),
        );
        state.conn_opened();
        ipe_obs::counter!("service.conn.accepted", 1);
    }
}

/// Answers an over-capacity connection `503` (best-effort; the socket is
/// fresh so the small write virtually always lands) and drops it.
fn reject_busy(mut stream: TcpStream, state: &Arc<ServiceState>) {
    state.count_rejected();
    ipe_obs::counter!("service.conn.rejected", 1);
    let bytes = render_response(
        503,
        "application/json",
        &error_body("request queue is full"),
        false,
        &[],
    );
    let _ = stream.write_all(&bytes);
}

/// Expires deadlines: mid-request connections get a `408` and one grace
/// period to flush it; idle ones close silently.
fn reap_expired(conns: &mut HashMap<u64, Conn>, dead: &mut Vec<u64>, poller: &Poller) {
    let now = Instant::now();
    for (token, conn) in conns.iter_mut() {
        if now < conn.deadline || dead.contains(token) {
            continue;
        }
        if conn.mid_request && !conn.timed_out {
            ipe_obs::counter!("service.conn.timeout_408", 1);
            conn.buf.clear();
            conn.queue_response(
                408,
                "application/json",
                &error_body("request timed out before it completed"),
                false,
                &[],
            );
            conn.close_after_flush = true;
            conn.timed_out = true;
            conn.deadline = now + TIMEOUT_FLUSH_GRACE;
            match conn.flush() {
                Ok((true, _)) | Err(_) => dead.push(*token),
                Ok((false, _)) => {
                    // Backpressured 408: arm EPOLLOUT so the kernel tells
                    // us when it can leave; the grace deadline bounds the
                    // wait regardless.
                    let want = conn.interest | EPOLLOUT;
                    if poller.modify(conn.stream.as_raw_fd(), *token, want).is_ok() {
                        conn.interest = want;
                    } else {
                        dead.push(*token);
                    }
                }
            }
        } else {
            dead.push(*token);
        }
    }
}

/// Removes a connection: the poller registration dies with the fd.
fn close_conn(conns: &mut HashMap<u64, Conn>, token: u64, state: &Arc<ServiceState>) {
    if conns.remove(&token).is_some() {
        state.conn_closed();
        ipe_obs::counter!("service.conn.closed", 1);
    }
}

/// Moves a connection out of the reactor and onto a replication
/// streaming thread: deregister the fd, restore blocking mode, and hand
/// over the socket with whatever response bytes are still unflushed. The
/// connection stops counting against this reactor's live cap — stream
/// longevity is bounded by the hub's overflow cutoff, not the request
/// timeout.
fn detach_conn(
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    state: &Arc<ServiceState>,
    poller: &Poller,
) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    state.conn_closed();
    let _ = poller.delete(conn.stream.as_raw_fd());
    if conn.stream.set_nonblocking(false).is_err() {
        return;
    }
    let start = conn
        .detach
        .expect("detached connections carry a stream start");
    let pending = conn.out[conn.out_pos..].to_vec();
    spawn_leader_stream(state, conn.stream, pending, start);
}
