//! Wire types of the JSON API: request bodies, response bodies, and the
//! translation from a [`CompleteRequest`] into an engine
//! [`CompletionConfig`].

use ipe_core::{CompletionConfig, Pruning, SearchStats};
use ipe_schema::Schema;

/// Body of `POST /v1/complete`. Only `query` is required; everything else
/// falls back to the engine defaults against the `default` schema.
#[derive(Debug, serde::Deserialize)]
pub struct CompleteRequest {
    /// Registry name of the schema to complete against (default
    /// `"default"`).
    #[serde(default)]
    pub schema: String,
    /// The (possibly incomplete) path expression text.
    pub query: String,
    /// The `E` parameter of `AGG*`; must be ≥ 1 when given.
    #[serde(default)]
    pub e: Option<u64>,
    /// Class names that must not appear in any completion.
    #[serde(default)]
    pub exclude: Vec<String>,
    /// Branch-and-bound mode: `none`, `paper`, `paper-no-caution`, or
    /// `safe` (the default).
    #[serde(default)]
    pub pruning: Option<String>,
    /// Order label-tied completions most-specific-first.
    #[serde(default)]
    pub prefer_specific: bool,
    /// Require the schema to be at least at this generation; a lagging
    /// follower answers `409` (retryable) instead of serving stale state.
    #[serde(default)]
    pub min_generation: Option<u64>,
}

impl CompleteRequest {
    /// The registry name to use, applying the `"default"` fallback.
    pub fn schema_name(&self) -> &str {
        if self.schema.is_empty() {
            "default"
        } else {
            &self.schema
        }
    }

    /// Builds the engine configuration, resolving class names against
    /// `schema`. Errors are user-facing 400 messages.
    pub fn config(&self, schema: &Schema) -> Result<CompletionConfig, String> {
        build_config(
            self.e,
            self.pruning.as_deref(),
            &self.exclude,
            self.prefer_specific,
            schema,
        )
    }
}

/// Shared `CompletionConfig` construction for the single and batch
/// endpoints. Errors are user-facing 400 messages.
fn build_config(
    e: Option<u64>,
    pruning: Option<&str>,
    exclude: &[String],
    prefer_specific: bool,
    schema: &Schema,
) -> Result<CompletionConfig, String> {
    let mut cfg = CompletionConfig::default();
    if let Some(e) = e {
        if e == 0 {
            return Err("`e` must be >= 1".to_owned());
        }
        cfg.e = e as usize;
    }
    if let Some(p) = pruning {
        cfg.pruning = match p {
            "none" => Pruning::None,
            "paper" => Pruning::Paper,
            "paper-no-caution" => Pruning::PaperNoCaution,
            "safe" => Pruning::Safe,
            other => return Err(format!("unknown pruning mode `{other}`")),
        };
    }
    for name in exclude {
        let class = schema
            .class_named(name)
            .ok_or_else(|| format!("unknown class `{name}` in `exclude`"))?;
        cfg.excluded_classes.push(class);
    }
    cfg.prefer_specific = prefer_specific;
    Ok(cfg)
}

/// Body of `POST /v1/complete/batch`. The configuration knobs apply to
/// every query; `queries` is capped server-side (see the endpoint docs).
#[derive(Debug, serde::Deserialize)]
pub struct BatchCompleteRequest {
    /// Registry name of the schema to complete against (default
    /// `"default"`).
    #[serde(default)]
    pub schema: String,
    /// The (possibly incomplete) path expression texts, completed in
    /// parallel.
    pub queries: Vec<String>,
    /// The `E` parameter of `AGG*`; must be ≥ 1 when given.
    #[serde(default)]
    pub e: Option<u64>,
    /// Class names that must not appear in any completion.
    #[serde(default)]
    pub exclude: Vec<String>,
    /// Branch-and-bound mode: `none`, `paper`, `paper-no-caution`, or
    /// `safe` (the default).
    #[serde(default)]
    pub pruning: Option<String>,
    /// Order label-tied completions most-specific-first.
    #[serde(default)]
    pub prefer_specific: bool,
    /// Require the schema to be at least at this generation; a lagging
    /// follower answers `409` (retryable) instead of serving stale state.
    #[serde(default)]
    pub min_generation: Option<u64>,
    /// Per-item wall-clock budget in milliseconds. Defaults to the
    /// server's configured budget; capped at 60 000.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Worker threads for this batch. Defaults to the server's configured
    /// `batch_threads`; capped at 16.
    #[serde(default)]
    pub threads: Option<u64>,
}

impl BatchCompleteRequest {
    /// The registry name to use, applying the `"default"` fallback.
    pub fn schema_name(&self) -> &str {
        if self.schema.is_empty() {
            "default"
        } else {
            &self.schema
        }
    }

    /// Builds the engine configuration shared by every item in the batch.
    pub fn config(&self, schema: &Schema) -> Result<CompletionConfig, String> {
        build_config(
            self.e,
            self.pruning.as_deref(),
            &self.exclude,
            self.prefer_specific,
            schema,
        )
    }
}

/// One query's outcome in a [`BatchCompleteResponse`], in submission
/// order.
#[derive(Debug, serde::Serialize)]
pub struct BatchItemView {
    /// The normalized query text (the raw input if it failed to parse).
    pub query: String,
    /// `"ok"`, `"error"`, or `"deadline_exceeded"`.
    pub status: String,
    /// Whether this item's result came from the completion cache.
    pub cached: bool,
    /// Wall-clock time this item spent in the engine (0 for cache hits
    /// and parse failures).
    pub duration_ns: u64,
    /// The error message when `status` is not `"ok"`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// The optimal completions, best first (empty unless `status` is
    /// `"ok"`).
    pub completions: Vec<CompletionView>,
}

/// Body of a successful `POST /v1/complete/batch` response. The HTTP
/// status is `200` even when individual items failed; per-item `status`
/// carries the outcome.
#[derive(Debug, serde::Serialize)]
pub struct BatchCompleteResponse {
    /// Registry name the batch ran against.
    pub schema: String,
    /// Schema generation the results belong to.
    pub generation: u64,
    /// Per-item deadline that applied, in milliseconds (0 = unlimited).
    pub deadline_ms: u64,
    /// Worker threads the batch ran on.
    pub threads: u64,
    /// Whole-batch wall clock (parse + cache probes + parallel search).
    pub wall_ns: u64,
    /// Items that hit their deadline.
    pub deadline_hits: u64,
    /// One outcome per submitted query, in submission order.
    pub items: Vec<BatchItemView>,
}

/// One completion in a [`CompleteResponse`].
#[derive(Debug, serde::Serialize)]
pub struct CompletionView {
    /// The complete path expression in the paper's textual syntax.
    pub text: String,
    /// The path label's connector.
    pub connector: String,
    /// The path label's semantic length.
    pub semlen: u64,
    /// Number of relationships traversed.
    pub edges: u64,
}

/// Body of a successful `POST /v1/complete` response.
#[derive(Debug, serde::Serialize)]
pub struct CompleteResponse {
    /// Registry name the completion ran against.
    pub schema: String,
    /// Schema generation the result belongs to.
    pub generation: u64,
    /// The normalized query text (the cache key's form).
    pub query: String,
    /// Whether the result came from the completion cache.
    pub cached: bool,
    /// Server-side compute time in nanoseconds: registry lookup, parse,
    /// cache probe, and (on a miss) the full search. Excludes HTTP and
    /// JSON framing, so cold-vs-warm comparisons measure the engine, not
    /// the socket.
    pub duration_ns: u64,
    /// The optimal completions, best first.
    pub completions: Vec<CompletionView>,
    /// Search counters of the run that produced the result (cached
    /// responses repeat the original run's counters).
    pub stats: SearchStats,
}

/// Body of `PUT /v1/schemas/:name` responses.
#[derive(Debug, serde::Serialize)]
pub struct SchemaPutResponse {
    /// Registry name.
    pub name: String,
    /// Stable registry id.
    pub id: u64,
    /// Generation after this upload (1 for a new name).
    pub generation: u64,
    /// Cache entries of older generations dropped by the upload.
    pub purged_cache_entries: u64,
}

/// Body of `DELETE /v1/schemas/:name` responses.
#[derive(Debug, serde::Serialize)]
pub struct SchemaDeleteResponse {
    /// Registry name that was removed.
    pub name: String,
    /// The removed schema's stable registry id.
    pub id: u64,
    /// Generation the schema was at when removed.
    pub generation: u64,
    /// Cache entries of the removed schema dropped by the delete.
    pub purged_cache_entries: u64,
    /// Whether the delete also dropped a loaded data registry instance.
    pub purged_data: bool,
}

/// Body of `PUT /v1/data/:schema`: either an explicit bulk spec
/// (objects/links/attrs, see [`ipe_query::DataSpec`]) or a synthetic
/// generation request (`gen`), not both.
#[derive(Debug, Default, serde::Deserialize)]
pub struct DataPutRequest {
    /// Synthetic generation knobs; when present the explicit sections
    /// must be empty.
    #[serde(default)]
    pub gen: Option<ipe_gen::DataGenConfig>,
    /// Objects to create (explicit load).
    #[serde(default)]
    pub objects: Vec<ipe_query::ObjectSpec>,
    /// Links to store (explicit load).
    #[serde(default)]
    pub links: Vec<ipe_query::LinkSpec>,
    /// Attribute values to set (explicit load).
    #[serde(default)]
    pub attrs: Vec<ipe_query::AttrSpec>,
}

impl DataPutRequest {
    /// The explicit sections as a [`ipe_query::DataSpec`].
    pub fn spec(&self) -> ipe_query::DataSpec {
        ipe_query::DataSpec {
            objects: self.objects.clone(),
            links: self.links.clone(),
            attrs: self.attrs.clone(),
        }
    }
}

/// Body of `PUT /v1/data/:schema` (and `GET /v1/data/:schema`) responses.
#[derive(Debug, serde::Serialize)]
pub struct DataPutResponse {
    /// Registry name of the schema the data belongs to.
    pub schema: String,
    /// The schema generation the data was loaded against.
    pub schema_generation: u64,
    /// Load counter for this name (1 for the first load).
    pub data_generation: u64,
    /// `"spec"` or `"gen"`.
    pub source: String,
    /// Objects in the loaded instance.
    pub objects: u64,
    /// Stored link instances (inverses included).
    pub links: u64,
    /// Stored attribute values.
    pub attrs: u64,
}

/// Body of `DELETE /v1/data/:schema` responses.
#[derive(Debug, serde::Serialize)]
pub struct DataDeleteResponse {
    /// Registry name whose data was dropped.
    pub schema: String,
    /// Data generation at removal.
    pub data_generation: u64,
}

/// Body of `POST /v1/query`. Extends the completion knobs of
/// [`CompleteRequest`] with evaluation controls.
#[derive(Debug, serde::Deserialize)]
pub struct QueryRequest {
    /// Registry name of the schema to query (default `"default"`).
    #[serde(default)]
    pub schema: String,
    /// The (possibly incomplete) path expression text.
    pub query: String,
    /// The `E` parameter of `AGG*`; must be ≥ 1 when given.
    #[serde(default)]
    pub e: Option<u64>,
    /// Class names that must not appear in any completion.
    #[serde(default)]
    pub exclude: Vec<String>,
    /// Branch-and-bound mode: `none`, `paper`, `paper-no-caution`, or
    /// `safe` (the default).
    #[serde(default)]
    pub pruning: Option<String>,
    /// Order label-tied completions most-specific-first.
    #[serde(default)]
    pub prefer_specific: bool,
    /// Require the schema to be at least at this generation; a lagging
    /// follower answers `409` (retryable) instead of serving stale state.
    #[serde(default)]
    pub min_generation: Option<u64>,
    /// Wall-clock budget in milliseconds across disambiguation and
    /// evaluation. Defaults to the server's query budget; capped at
    /// 60 000.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Return only the certain answers (every completion agrees).
    #[serde(default)]
    pub certain_only: bool,
}

impl QueryRequest {
    /// The registry name to use, applying the `"default"` fallback.
    pub fn schema_name(&self) -> &str {
        if self.schema.is_empty() {
            "default"
        } else {
            &self.schema
        }
    }

    /// Builds the engine configuration, resolving class names against
    /// `schema`. Errors are user-facing 400 messages.
    pub fn config(&self, schema: &Schema) -> Result<CompletionConfig, String> {
        build_config(
            self.e,
            self.pruning.as_deref(),
            &self.exclude,
            self.prefer_specific,
            schema,
        )
    }
}

/// One answer in a [`QueryResponse`].
#[derive(Debug, serde::Serialize)]
pub struct AnswerView {
    /// `"object"` or `"value"`.
    pub kind: String,
    /// The object id when `kind` is `"object"`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub object: Option<u64>,
    /// The rendered value when `kind` is `"value"`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub value: Option<String>,
    /// Whether every evaluated completion produced this answer.
    pub certain: bool,
    /// Provenance: indices into the response's `completions` list of the
    /// completions that produced this answer. Sorted, nonempty.
    pub completions: Vec<u64>,
}

/// Body of a successful `POST /v1/query` response.
#[derive(Debug, serde::Serialize)]
pub struct QueryResponse {
    /// Registry name the query ran against.
    pub schema: String,
    /// Schema generation the result belongs to.
    pub generation: u64,
    /// Data generation the result was evaluated on.
    pub data_generation: u64,
    /// The normalized query text.
    pub query: String,
    /// The `E` the query ran at.
    pub e: u64,
    /// Whether the completion set came from the completion cache.
    pub cached: bool,
    /// Server-side compute time in nanoseconds (lookup, parse, search or
    /// cache probe, evaluation, merge).
    pub duration_ns: u64,
    /// The evaluated completions, best first.
    pub completions: Vec<CompletionView>,
    /// The merged answers with provenance (only the certain ones when the
    /// request set `certain_only`).
    pub answers: Vec<AnswerView>,
    /// Number of certain answers.
    pub certain: u64,
    /// Number of possible answers (before any `certain_only` filter).
    pub possible: u64,
    /// Objects visited across all per-completion evaluations.
    pub visited: u64,
    /// Search counters of the run that produced the completion set.
    pub stats: SearchStats,
}

/// Uniform error body for every non-2xx response.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\": ");
    ipe_obs::json::push_str_literal(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipe_schema::fixtures;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req: CompleteRequest = serde_json::from_str(r#"{"query": "ta~name"}"#).unwrap();
        assert_eq!(req.schema_name(), "default");
        assert_eq!(req.query, "ta~name");
        let cfg = req.config(&fixtures::university()).unwrap();
        assert_eq!(cfg.e, 1);
        assert_eq!(cfg.pruning, Pruning::Safe);
        assert!(cfg.excluded_classes.is_empty());
    }

    #[test]
    fn full_request_round_trips_into_config() {
        let req: CompleteRequest = serde_json::from_str(
            r#"{"schema": "uni", "query": "ta~name", "e": 2,
                "exclude": ["person"], "pruning": "paper", "prefer_specific": true}"#,
        )
        .unwrap();
        assert_eq!(req.schema_name(), "uni");
        let schema = fixtures::university();
        let cfg = req.config(&schema).unwrap();
        assert_eq!(cfg.e, 2);
        assert_eq!(cfg.pruning, Pruning::Paper);
        assert_eq!(
            cfg.excluded_classes,
            vec![schema.class_named("person").unwrap()]
        );
        assert!(cfg.prefer_specific);
    }

    #[test]
    fn bad_requests_are_rejected() {
        let schema = fixtures::university();
        let zero_e: CompleteRequest = serde_json::from_str(r#"{"query": "q", "e": 0}"#).unwrap();
        assert!(zero_e.config(&schema).is_err());
        let bad_class: CompleteRequest =
            serde_json::from_str(r#"{"query": "q", "exclude": ["nope"]}"#).unwrap();
        assert!(bad_class.config(&schema).is_err());
        let bad_pruning: CompleteRequest =
            serde_json::from_str(r#"{"query": "q", "pruning": "wild"}"#).unwrap();
        assert!(bad_pruning.config(&schema).is_err());
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("a\"b"), "{\"error\": \"a\\\"b\"}");
    }
}
