//! Wire types of the JSON API: request bodies, response bodies, and the
//! translation from a [`CompleteRequest`] into an engine
//! [`CompletionConfig`].

use ipe_core::{CompletionConfig, Pruning, SearchStats};
use ipe_schema::Schema;

/// Body of `POST /v1/complete`. Only `query` is required; everything else
/// falls back to the engine defaults against the `default` schema.
#[derive(Debug, serde::Deserialize)]
pub struct CompleteRequest {
    /// Registry name of the schema to complete against (default
    /// `"default"`).
    #[serde(default)]
    pub schema: String,
    /// The (possibly incomplete) path expression text.
    pub query: String,
    /// The `E` parameter of `AGG*`; must be ≥ 1 when given.
    #[serde(default)]
    pub e: Option<u64>,
    /// Class names that must not appear in any completion.
    #[serde(default)]
    pub exclude: Vec<String>,
    /// Branch-and-bound mode: `none`, `paper`, `paper-no-caution`, or
    /// `safe` (the default).
    #[serde(default)]
    pub pruning: Option<String>,
    /// Order label-tied completions most-specific-first.
    #[serde(default)]
    pub prefer_specific: bool,
}

impl CompleteRequest {
    /// The registry name to use, applying the `"default"` fallback.
    pub fn schema_name(&self) -> &str {
        if self.schema.is_empty() {
            "default"
        } else {
            &self.schema
        }
    }

    /// Builds the engine configuration, resolving class names against
    /// `schema`. Errors are user-facing 400 messages.
    pub fn config(&self, schema: &Schema) -> Result<CompletionConfig, String> {
        let mut cfg = CompletionConfig::default();
        if let Some(e) = self.e {
            if e == 0 {
                return Err("`e` must be >= 1".to_owned());
            }
            cfg.e = e as usize;
        }
        if let Some(p) = &self.pruning {
            cfg.pruning = match p.as_str() {
                "none" => Pruning::None,
                "paper" => Pruning::Paper,
                "paper-no-caution" => Pruning::PaperNoCaution,
                "safe" => Pruning::Safe,
                other => return Err(format!("unknown pruning mode `{other}`")),
            };
        }
        for name in &self.exclude {
            let class = schema
                .class_named(name)
                .ok_or_else(|| format!("unknown class `{name}` in `exclude`"))?;
            cfg.excluded_classes.push(class);
        }
        cfg.prefer_specific = self.prefer_specific;
        Ok(cfg)
    }
}

/// One completion in a [`CompleteResponse`].
#[derive(Debug, serde::Serialize)]
pub struct CompletionView {
    /// The complete path expression in the paper's textual syntax.
    pub text: String,
    /// The path label's connector.
    pub connector: String,
    /// The path label's semantic length.
    pub semlen: u64,
    /// Number of relationships traversed.
    pub edges: u64,
}

/// Body of a successful `POST /v1/complete` response.
#[derive(Debug, serde::Serialize)]
pub struct CompleteResponse {
    /// Registry name the completion ran against.
    pub schema: String,
    /// Schema generation the result belongs to.
    pub generation: u64,
    /// The normalized query text (the cache key's form).
    pub query: String,
    /// Whether the result came from the completion cache.
    pub cached: bool,
    /// Server-side compute time in nanoseconds: registry lookup, parse,
    /// cache probe, and (on a miss) the full search. Excludes HTTP and
    /// JSON framing, so cold-vs-warm comparisons measure the engine, not
    /// the socket.
    pub duration_ns: u64,
    /// The optimal completions, best first.
    pub completions: Vec<CompletionView>,
    /// Search counters of the run that produced the result (cached
    /// responses repeat the original run's counters).
    pub stats: SearchStats,
}

/// Body of `PUT /v1/schemas/:name` responses.
#[derive(Debug, serde::Serialize)]
pub struct SchemaPutResponse {
    /// Registry name.
    pub name: String,
    /// Stable registry id.
    pub id: u64,
    /// Generation after this upload (1 for a new name).
    pub generation: u64,
    /// Cache entries of older generations dropped by the upload.
    pub purged_cache_entries: u64,
}

/// Uniform error body for every non-2xx response.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\": ");
    ipe_obs::json::push_str_literal(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipe_schema::fixtures;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req: CompleteRequest = serde_json::from_str(r#"{"query": "ta~name"}"#).unwrap();
        assert_eq!(req.schema_name(), "default");
        assert_eq!(req.query, "ta~name");
        let cfg = req.config(&fixtures::university()).unwrap();
        assert_eq!(cfg.e, 1);
        assert_eq!(cfg.pruning, Pruning::Safe);
        assert!(cfg.excluded_classes.is_empty());
    }

    #[test]
    fn full_request_round_trips_into_config() {
        let req: CompleteRequest = serde_json::from_str(
            r#"{"schema": "uni", "query": "ta~name", "e": 2,
                "exclude": ["person"], "pruning": "paper", "prefer_specific": true}"#,
        )
        .unwrap();
        assert_eq!(req.schema_name(), "uni");
        let schema = fixtures::university();
        let cfg = req.config(&schema).unwrap();
        assert_eq!(cfg.e, 2);
        assert_eq!(cfg.pruning, Pruning::Paper);
        assert_eq!(
            cfg.excluded_classes,
            vec![schema.class_named("person").unwrap()]
        );
        assert!(cfg.prefer_specific);
    }

    #[test]
    fn bad_requests_are_rejected() {
        let schema = fixtures::university();
        let zero_e: CompleteRequest = serde_json::from_str(r#"{"query": "q", "e": 0}"#).unwrap();
        assert!(zero_e.config(&schema).is_err());
        let bad_class: CompleteRequest =
            serde_json::from_str(r#"{"query": "q", "exclude": ["nope"]}"#).unwrap();
        assert!(bad_class.config(&schema).is_err());
        let bad_pruning: CompleteRequest =
            serde_json::from_str(r#"{"query": "q", "pruning": "wild"}"#).unwrap();
        assert!(bad_pruning.config(&schema).is_err());
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("a\"b"), "{\"error\": \"a\\\"b\"}");
    }
}
