//! A thin, std-only shim over the Linux readiness syscalls the reactor
//! needs: `epoll` for event multiplexing, `eventfd` for cross-thread
//! wakeups, and raw socket creation so `SO_REUSEPORT` can be set *before*
//! `bind` (std's `TcpListener::bind` offers no hook for that, and the
//! option is ignored after binding).
//!
//! The codebase hand-rolls serde, CRC, and LRU rather than take
//! dependencies; this module extends that stance to the syscall layer:
//! `extern "C"` declarations against the C library std already links, no
//! `libc` crate. Everything unsafe in the service crate lives here,
//! behind four safe types: [`Poller`], [`Wake`], [`bind_reuseport`], and
//! [`set_rcvbuf`]. Linux-only, like the reactor that drives it.

// The one module allowed to use `unsafe` (the crate denies it): raw fds
// are owned exclusively by their wrapper types and closed exactly once in
// `Drop`, and every syscall's error path goes through `errno`.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

/// Readable (or a connection is ready to accept).
pub const EPOLLIN: u32 = 0x1;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported; never needs registering).
pub const EPOLLERR: u32 = 0x8;
/// Hangup (always reported; never needs registering).
pub const EPOLLHUP: u32 = 0x10;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0x80000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;
const SO_RCVBUF: i32 = 8;
const SO_REUSEPORT: i32 = 15;
const LISTEN_BACKLOG: i32 = 1024;

/// One readiness notification: an event mask plus the caller's token.
///
/// Mirrors the kernel's `struct epoll_event`, which is packed on x86-64
/// (and only there) so the 64-bit data field sits at offset 4.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct Event {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The token passed to [`Poller::add`] for this fd.
    pub data: u64,
}

impl Event {
    /// A zeroed event, for pre-filling the wait buffer.
    pub fn empty() -> Event {
        Event { events: 0, data: 0 }
    }

    /// The readiness bits (by-value copy; the struct may be packed).
    pub fn readiness(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// The registration token (by-value copy; the struct may be packed).
    pub fn token(&self) -> u64 {
        let e = *self;
        e.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

/// Converts a `-1` syscall return into the current `errno` as `io::Error`.
fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A level-triggered epoll instance. Level triggering keeps the state
/// machine simple: a fd with unconsumed readiness is re-reported on the
/// next wait, so a handler that stops early (e.g. to bound work per tick)
/// loses nothing.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall; the fd is owned by the returned Poller.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = Event {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for `events`; notifications carry `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Removes a registration. (Closing the fd does this implicitly; the
    /// explicit form keeps the bookkeeping visible.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// lapses; `None` waits forever). Fills the front of `events` and
    /// returns how many entries are valid. Retries `EINTR` internally.
    pub fn wait(&self, events: &mut [Event], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs deadline doesn't spin as 0ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries and
            // the kernel writes at most that many.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            match check(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poller and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup channel backed by an `eventfd`: register its fd
/// with a [`Poller`], then [`Wake::wake`] from any thread to make that
/// poller's `wait` return. Cheap, edge-free, and coalescing (N wakes
/// before a drain still cost one event).
pub struct Wake {
    fd: RawFd,
}

impl Wake {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<Wake> {
        // SAFETY: plain syscall; the fd is owned by the returned Wake.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Wake { fd })
    }

    /// The fd to register with the poller.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the owning poller's next (or current) `wait` return.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value; an error (e.g.
        // the counter is saturated) still leaves the fd readable, which
        // is all a wakeup needs.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakeups so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer; the fd
        // is nonblocking so this never hangs (EAGAIN when already clear).
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Wake {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Wake and closed exactly once.
        unsafe { close(self.fd) };
    }
}

fn set_opt_i32(fd: RawFd, level: i32, name: i32, value: i32) -> io::Result<()> {
    // SAFETY: passes a live 4-byte value with its exact length.
    check(unsafe { setsockopt(fd, level, name, (&value as *const i32).cast(), 4) })?;
    Ok(())
}

/// `struct sockaddr_in`, laid out as the kernel expects.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Big-endian.
    port: u16,
    /// Big-endian.
    addr: u32,
    zero: [u8; 8],
}

/// `struct sockaddr_in6`, laid out as the kernel expects.
#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    /// Big-endian.
    port: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// Binds a listener on `addr` with `SO_REUSEPORT` (and `SO_REUSEADDR`)
/// set before the bind, so several listeners can share one port and the
/// kernel load-balances incoming connections across them by 4-tuple
/// hash — the reactor's acceptor shards. The listener comes back
/// nonblocking.
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    // SAFETY: plain syscall; on success the fd is handed to exactly one
    // owner below (TcpListener) or closed on the error path.
    let fd = check(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // Every fallible step below must close fd on failure; wrap it so the
    // error paths cannot leak.
    let guard = FdGuard(fd);
    set_opt_i32(fd, SOL_SOCKET, SO_REUSEADDR, 1)?;
    set_opt_i32(fd, SOL_SOCKET, SO_REUSEPORT, 1)?;
    match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: passes a live sockaddr_in with its exact size.
            check(unsafe {
                bind(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id().to_be(),
            };
            // SAFETY: passes a live sockaddr_in6 with its exact size.
            check(unsafe {
                bind(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    // SAFETY: plain syscall on the still-owned fd.
    check(unsafe { listen(fd, LISTEN_BACKLOG) })?;
    std::mem::forget(guard);
    // SAFETY: transfers the fd's ownership into the TcpListener; no other
    // owner remains (the guard was forgotten).
    let listener = unsafe { TcpListener::from_raw_fd(fd) };
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// Closes a raw fd on drop — the error-path owner inside
/// [`bind_reuseport`].
struct FdGuard(RawFd);

impl Drop for FdGuard {
    fn drop(&mut self) {
        // SAFETY: the guard is the fd's only owner when it drops.
        unsafe { close(self.0) };
    }
}

/// Shrinks a socket's kernel receive buffer (test hook: a tiny client
/// `SO_RCVBUF` makes the server hit write backpressure deterministically
/// on large responses).
pub fn set_rcvbuf(sock: &impl AsRawFd, bytes: i32) -> io::Result<()> {
    set_opt_i32(sock.as_raw_fd(), SOL_SOCKET, SO_RCVBUF, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpStream;

    #[test]
    fn wake_unblocks_an_infinite_wait() {
        let poller = Poller::new().unwrap();
        let wake = std::sync::Arc::new(Wake::new().unwrap());
        poller.add(wake.raw_fd(), 7, EPOLLIN).unwrap();
        let w = std::sync::Arc::clone(&wake);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = [Event::empty(); 4];
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        wake.drain();
        // Drained: a short wait now times out with no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        waker.join().unwrap();
    }

    #[test]
    fn reuseport_listeners_share_one_port() {
        let first = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = bind_reuseport(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);

        // A connection lands on exactly one of the two listeners.
        let poller = Poller::new().unwrap();
        poller.add(first.as_raw_fd(), 1, EPOLLIN).unwrap();
        poller.add(second.as_raw_fd(), 2, EPOLLIN).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = [Event::empty(); 4];
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        let token = events[0].token();
        assert!(token == 1 || token == 2);
        let accepted = if token == 1 {
            first.accept()
        } else {
            second.accept()
        };
        assert!(accepted.is_ok());
    }

    #[test]
    fn epoll_reports_writability_and_modify_narrows_interest() {
        let listener = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(client.as_raw_fd(), 9, EPOLLIN | EPOLLOUT)
            .unwrap();
        let mut events = [Event::empty(); 4];
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert_ne!(
            events[0].readiness() & EPOLLOUT,
            0,
            "fresh socket is writable"
        );
        // Narrow to read-only interest: writability is no longer reported.
        poller.modify(client.as_raw_fd(), 9, EPOLLIN).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(client.as_raw_fd()).unwrap();
    }
}
