//! End-to-end tests of the query subsystem over a real socket: data
//! loading, provenance-annotated answers, warm/cold identity, and every
//! error status of `POST /v1/query`.

use ipe_schema::fixtures;
use ipe_service::{Client, Server, ServiceConfig};
use serde::Value;
use std::time::Duration;

/// A small test server on an ephemeral port, with the university fixture
/// preloaded as `default`.
fn start_server() -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 4,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 4,
        batch_threads: 2,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

/// Loads a tiny explicit university instance: Alice the TA takes the
/// Databases course, which Yannis teaches; names are set so attribute
/// answers are observable.
fn put_small_data(client: &mut Client) {
    let spec = r#"{
      "objects": [
        {"id": "alice", "class": "ta"},
        {"id": "yannis", "class": "professor"},
        {"id": "db101", "class": "course"}
      ],
      "links": [
        {"from": "alice", "rel": "take", "to": "db101"},
        {"from": "db101", "rel": "teacher", "to": "yannis"}
      ],
      "attrs": [
        {"of": "alice", "attr": "name", "value": "Alice"},
        {"of": "yannis", "attr": "name", "value": "Yannis"},
        {"of": "db101", "attr": "name", "value": "Databases"}
      ]
    }"#;
    let (status, body) = client.request("PUT", "/v1/data/default", spec).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "objects")), 3);
    assert_eq!(get(&v, "source"), Value::Str("spec".to_owned()));
}

#[test]
fn data_round_trip_and_info() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    let (status, body) = client.request("GET", "/v1/data/default", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "data_generation")), 1);
    // Reload bumps the data generation.
    put_small_data(&mut client);
    let (_, body) = client.request("GET", "/v1/data/default", "").unwrap();
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "data_generation")), 2);
    // Delete drops it.
    let (status, _) = client.request("DELETE", "/v1/data/default", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.request("GET", "/v1/data/default", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn gen_data_load_works_and_oversize_is_413() {
    let (server, mut client) = start_server();
    let (status, body) = client
        .request("PUT", "/v1/data/default", r#"{"gen": {"seed": 7}}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "source"), Value::Str("gen".to_owned()));
    assert!(as_u64(&get(&v, "objects")) > 0);
    // A generation request projecting past the cap is refused up front.
    let (status, body) = client
        .request(
            "PUT",
            "/v1/data/default",
            r#"{"gen": {"objects_per_class": 999999999}}"#,
        )
        .unwrap();
    assert_eq!(status, 413, "{body}");
    server.shutdown();
}

/// The acceptance-criteria scenario: an incomplete expression at E=3
/// over loaded data returns answers partitioned certain/possible with
/// per-answer completion provenance, identical warm and cold.
#[test]
fn query_e3_partitions_answers_with_provenance() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    let req = r#"{"query": "ta ~ name", "e": 3}"#;
    let (status, cold) = client.request("POST", "/v1/query", req).unwrap();
    assert_eq!(status, 200, "{cold}");
    let v = serde_json::parse_value_text(&cold).unwrap();
    assert_eq!(get(&v, "cached"), Value::Bool(false));
    assert_eq!(as_u64(&get(&v, "e")), 3);
    let Value::Seq(completions) = get(&v, "completions") else {
        panic!("completions is not an array: {cold}");
    };
    assert!(completions.len() >= 2, "{cold}");
    let Value::Seq(answers) = get(&v, "answers") else {
        panic!("answers is not an array: {cold}");
    };
    assert!(!answers.is_empty(), "{cold}");
    let certain = as_u64(&get(&v, "certain"));
    let possible = as_u64(&get(&v, "possible"));
    assert!(certain <= possible);
    assert_eq!(answers.len() as u64, possible);
    // "Alice" comes from both optimal readings of ta~name, so it is
    // certain; its provenance lists multiple completions.
    let alice = answers
        .iter()
        .find(|a| get(a, "value") == Value::Str("Alice".to_owned()))
        .unwrap_or_else(|| panic!("no Alice answer: {cold}"));
    assert_eq!(get(alice, "certain"), Value::Bool(true));
    let Value::Seq(prov) = get(alice, "completions") else {
        panic!("provenance is not an array");
    };
    assert!(prov.len() >= 2, "{cold}");
    // Every answer's provenance is nonempty and in range.
    for a in &answers {
        let Value::Seq(p) = get(a, "completions") else {
            panic!("provenance is not an array");
        };
        assert!(!p.is_empty());
        assert!(p.iter().all(|i| (as_u64(i) as usize) < completions.len()));
    }

    // Warm: identical answers, served from the completion cache.
    let (status, warm) = client.request("POST", "/v1/query", req).unwrap();
    assert_eq!(status, 200, "{warm}");
    let w = serde_json::parse_value_text(&warm).unwrap();
    assert_eq!(get(&w, "cached"), Value::Bool(true));
    assert_eq!(get(&w, "answers"), get(&v, "answers"));
    assert_eq!(get(&w, "completions"), get(&v, "completions"));
    assert_eq!(as_u64(&get(&w, "certain")), certain);
    assert_eq!(as_u64(&get(&w, "possible")), possible);
    server.shutdown();
}

#[test]
fn certain_only_filters_answers() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    let (status, body) = client
        .request(
            "POST",
            "/v1/query",
            r#"{"query": "ta ~ name", "e": 3, "certain_only": true}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(answers) = get(&v, "answers") else {
        panic!("answers is not an array: {body}");
    };
    assert_eq!(answers.len() as u64, as_u64(&get(&v, "certain")));
    assert!(answers
        .iter()
        .all(|a| get(a, "certain") == Value::Bool(true)));
    // `possible` still reports the unfiltered count.
    assert!(as_u64(&get(&v, "possible")) >= answers.len() as u64);
    server.shutdown();
}

#[test]
fn query_unknown_schema_is_404() {
    let (server, mut client) = start_server();
    let (status, body) = client
        .request(
            "POST",
            "/v1/query",
            r#"{"schema": "nope", "query": "ta~name"}"#,
        )
        .unwrap();
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no schema named"), "{body}");
    // Known schema but no data loaded: also 404, with a hint.
    let (status, body) = client
        .request("POST", "/v1/query", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no data loaded"), "{body}");
    server.shutdown();
}

#[test]
fn query_stale_data_after_schema_put_is_409() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    // Hot-swap the schema: generation bumps, loaded data goes stale.
    let schema_json = fixtures::university().to_json();
    let (status, body) = client
        .request("PUT", "/v1/schemas/default", &schema_json)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .request("POST", "/v1/query", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("generation"), "{body}");
    // Re-PUT of the data against the new generation clears the conflict.
    put_small_data(&mut client);
    let (status, body) = client
        .request("POST", "/v1/query", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn query_complete_expression_with_e_gt_1_is_422() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    let (status, body) = client
        .request(
            "POST",
            "/v1/query",
            r#"{"query": "student.take.teacher", "e": 2}"#,
        )
        .unwrap();
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("already complete"), "{body}");
    // The same complete expression at e=1 evaluates fine.
    let (status, body) = client
        .request("POST", "/v1/query", r#"{"query": "student.take.teacher"}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "certain")), as_u64(&get(&v, "possible")));
    server.shutdown();
}

#[test]
fn bad_bodies_and_unparsable_queries_are_400() {
    let (server, mut client) = start_server();
    put_small_data(&mut client);
    let (status, _) = client.request("POST", "/v1/query", "not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .request("POST", "/v1/query", r#"{"query": "ta~~"}"#)
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .request("POST", "/v1/query", r#"{"query": "ta~name", "e": 0}"#)
        .unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn bad_data_specs_are_rejected() {
    let (server, mut client) = start_server();
    // Unknown class in the spec: 422 from the loader.
    let (status, body) = client
        .request(
            "PUT",
            "/v1/data/default",
            r#"{"objects": [{"id": "x", "class": "wizard"}]}"#,
        )
        .unwrap();
    assert_eq!(status, 422, "{body}");
    // Unknown schema name: 404 before any loading.
    let (status, _) = client
        .request("PUT", "/v1/data/nope", r#"{"objects": []}"#)
        .unwrap();
    assert_eq!(status, 404);
    // gen + explicit sections are mutually exclusive: 400.
    let (status, body) = client
        .request(
            "PUT",
            "/v1/data/default",
            r#"{"gen": {"seed": 1}, "objects": [{"id": "a", "class": "ta"}]}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    server.shutdown();
}

/// The gen'd-data acceptance path: synthetic load, then an E-sweep whose
/// possible set grows (or holds) and certain set shrinks (or holds).
#[test]
fn gen_data_e_sweep_is_monotone() {
    let (server, mut client) = start_server();
    let (status, body) = client
        .request(
            "PUT",
            "/v1/data/default",
            r#"{"gen": {"objects_per_class": 4, "links_per_rel": 6, "seed": 11}}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let mut prev_possible = 0u64;
    let mut prev_certain = u64::MAX;
    for e in 1..=4u64 {
        let req = format!("{{\"query\": \"ta ~ name\", \"e\": {e}}}");
        let (status, body) = client.request("POST", "/v1/query", &req).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        let possible = as_u64(&get(&v, "possible"));
        let certain = as_u64(&get(&v, "certain"));
        assert!(certain <= possible);
        assert!(possible >= prev_possible, "possible monotone in E");
        assert!(certain <= prev_certain, "certain antitone in E");
        prev_possible = possible;
        prev_certain = certain;
    }
    server.shutdown();
}
