//! End-to-end persistence tests: a server with a data directory survives
//! restarts — acknowledged schema writes come back with their exact ids
//! and generations, deletes stay deleted, and the warmup journal
//! pre-warms the completion cache.

use ipe_schema::fixtures;
use ipe_service::{Client, FsyncPolicy, Server, ServiceConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ipe-service-persist-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_server(dir: &Path) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 2,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 2,
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        snapshot_every: 4,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

/// PUT + DELETE traffic survives a clean restart: ids and generations are
/// restored exactly, deleted schemas never resurrect, and post-restart
/// mutations continue both sequences monotonically.
#[test]
fn registry_survives_restart_with_exact_ids_and_generations() {
    let dir = tmp_dir("registry");
    let uni = fixtures::university().to_json();
    let assembly = fixtures::assembly().to_json();

    let (uni_id, doomed_id);
    {
        let (server, mut client) = durable_server(&dir);
        let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        uni_id = as_u64(&get(&v, "id"));
        // Hot-swap twice: generation 3.
        client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        let (_, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(as_u64(&get(&v, "generation")), 3);

        let (_, body) = client
            .request("PUT", "/v1/schemas/doomed", &assembly)
            .unwrap();
        let v = serde_json::parse_value_text(&body).unwrap();
        doomed_id = as_u64(&get(&v, "id"));
        let (status, _) = client.request("DELETE", "/v1/schemas/doomed", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    {
        let (server, mut client) = durable_server(&dir);
        // `uni` came back at its exact id and generation.
        let (status, body) = client.request("GET", "/v1/schemas/uni", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(as_u64(&get(&v, "id")), uni_id);
        assert_eq!(as_u64(&get(&v, "generation")), 3);

        // The deleted schema stayed deleted.
        let (status, _) = client.request("GET", "/v1/schemas/doomed", "").unwrap();
        assert_eq!(status, 404, "deleted schema must not resurrect");

        // A post-restart hot-swap continues the generation sequence.
        let (_, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(as_u64(&get(&v, "generation")), 4);

        // A fresh name gets an id no previous registration ever used —
        // even the deleted one's — so pre-restart cache keys cannot
        // alias it.
        let (_, body) = client
            .request("PUT", "/v1/schemas/fresh", &assembly)
            .unwrap();
        let v = serde_json::parse_value_text(&body).unwrap();
        let fresh_id = as_u64(&get(&v, "id"));
        assert!(
            fresh_id > uni_id && fresh_id > doomed_id,
            "fresh id {fresh_id} collides with a pre-restart id"
        );
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The warmup journal written on shutdown pre-warms the completion cache:
/// the first post-restart request for a hot query is already a cache hit.
#[test]
fn warmup_journal_prewarms_the_cache_across_restart() {
    let dir = tmp_dir("warmup");
    let uni = fixtures::university().to_json();
    {
        let (server, mut client) = durable_server(&dir);
        client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        for _ in 0..3 {
            let (status, _) = client
                .request(
                    "POST",
                    "/v1/complete",
                    r#"{"schema": "uni", "query": "ta~name"}"#,
                )
                .unwrap();
            assert_eq!(status, 200);
        }
        server.shutdown();
    }
    {
        let (server, mut client) = durable_server(&dir);
        let (status, body) = client
            .request(
                "POST",
                "/v1/complete",
                r#"{"schema": "uni", "query": "ta~name"}"#,
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(
            get(&v, "cached"),
            Value::Bool(true),
            "first request after restart should be warmed: {body}"
        );
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The `/metrics` service section reports durability gauges.
#[test]
fn metrics_report_durability() {
    let dir = tmp_dir("metrics");
    let (server, mut client) = durable_server(&dir);
    let uni = fixtures::university().to_json();
    client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    let service = get(&v, "service");
    assert_eq!(get(&service, "durable"), Value::Bool(true));
    assert!(as_u64(&get(&service, "wal_last_seq")) >= 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A panic injected while the store mutex is held must not cost
/// durability: the lock is recovered (the WAL is append-consistent at
/// every panic point), writes keep landing on disk, and a restart
/// recovers everything written both before and after the panic.
#[test]
fn durable_writes_survive_an_injected_panic() {
    let dir = tmp_dir("panic");
    let uni = fixtures::university().to_json();
    {
        let server = Server::start(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            reactors: 2,
            queue_depth: 16,
            request_timeout: Duration::from_secs(5),
            data_dir: Some(dir.to_path_buf()),
            fsync: FsyncPolicy::Always,
            debug_panic_route: true,
            ..Default::default()
        })
        .expect("bind ephemeral port");
        let mut client = Client::new(server.addr().to_string());

        let (status, body) = client.request("PUT", "/v1/schemas/before", &uni).unwrap();
        assert_eq!(status, 200, "{body}");

        // Poison the store/warmup/builder locks mid-flight.
        let (status, body) = client.request("POST", "/v1/debug/panic", "").unwrap();
        assert_eq!(status, 500, "{body}");

        // Durable mutations still work after recovery.
        let (status, body) = client.request("PUT", "/v1/schemas/after", &uni).unwrap();
        assert_eq!(status, 200, "{body}");
        client.request("POST", "/v1/shutdown", "").unwrap();
        server.join();
    }
    {
        let (server, mut client) = durable_server(&dir);
        for name in ["before", "after"] {
            let (status, body) = client
                .request("GET", &format!("/v1/schemas/{name}"), "")
                .unwrap();
            assert_eq!(status, 200, "{name} lost across restart: {body}");
        }
        client.request("POST", "/v1/shutdown", "").unwrap();
        server.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
