//! End-to-end replication: one leader, two followers, all in-process.
//! Covers convergence, generation-aware read routing, follower write
//! rejection, readiness transitions, snapshot bootstrap behind the
//! compaction horizon, delete propagation, and resume-from-persisted-seq
//! after a follower restart.

use ipe_schema::fixtures;
use ipe_service::{Client, FsyncPolicy, Server, ServiceConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ipe-repl-e2e-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn leader_server(dir: &Path, snapshot_every: u64) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        queue_depth: 32,
        request_timeout: Duration::from_secs(5),
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Never,
        snapshot_every,
        ..Default::default()
    })
    .expect("bind leader");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn follower_server(leader_addr: &str, dir: Option<&Path>) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        queue_depth: 32,
        request_timeout: Duration::from_secs(5),
        data_dir: dir.map(Path::to_path_buf),
        fsync: FsyncPolicy::Never,
        follow: Some(leader_addr.to_owned()),
        ..Default::default()
    })
    .expect("bind follower");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key} in {v:?}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

fn as_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

/// Polls `GET /readyz` until it answers 200, failing after ~5s.
fn await_ready(client: &mut Client) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client.request("GET", "/readyz", "").unwrap();
        if status == 200 {
            return;
        }
        assert_eq!(status, 503, "{body}");
        assert!(Instant::now() < deadline, "follower never ready: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until the follower's applied seq reaches `seq`, failing after ~5s.
fn await_applied(client: &mut Client, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client.request("GET", "/v1/repl/status", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        if as_u64(&get(&v, "applied_seq")) >= seq && as_u64(&get(&v, "lag_seq")) == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "follower stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The tentpole happy path: writes on the leader converge onto both a
/// durable and a memory-only follower, which then serve reads — and no
/// follower ever answers with a generation above what it has applied.
#[test]
fn two_followers_converge_and_serve_reads() {
    let leader_dir = tmp_dir("conv-leader");
    let f1_dir = tmp_dir("conv-f1");
    let (leader, mut lc) = leader_server(&leader_dir, 0);
    let leader_addr = leader.addr().to_string();
    let (f1, mut c1) = follower_server(&leader_addr, Some(&f1_dir));
    let (f2, mut c2) = follower_server(&leader_addr, None);

    let uni = fixtures::university().to_json();
    let (status, body) = lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    // Hot-swap to generation 3 so followers must apply every record, not
    // just the final state.
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let (_, body) = lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let v = serde_json::parse_value_text(&body).unwrap();
    let (uni_id, uni_gen) = (as_u64(&get(&v, "id")), as_u64(&get(&v, "generation")));
    assert_eq!(uni_gen, 3);

    for c in [&mut c1, &mut c2] {
        await_ready(c);
        await_applied(c, 3); // seq 1..=3 = the three uni puts
        let (status, body) = c.request("GET", "/v1/schemas/uni", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(as_u64(&get(&v, "id")), uni_id, "replicated id must match");
        assert_eq!(as_u64(&get(&v, "generation")), uni_gen);

        // Reads actually execute on the replica (not proxied).
        let (status, body) = c
            .request(
                "POST",
                "/v1/complete",
                "{\"schema\":\"uni\",\"query\":\"ta~name\"}",
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");

        // Generation routing: asking for the replicated generation
        // succeeds; asking beyond it is refused as non-retryable on a
        // caught-up node — the leader genuinely doesn't have it either.
        let req =
            format!("{{\"schema\":\"uni\",\"query\":\"ta~name\",\"min_generation\":{uni_gen}}}");
        let (status, body) = c.request("POST", "/v1/complete", &req).unwrap();
        assert_eq!(status, 200, "{body}");
        let req = format!(
            "{{\"schema\":\"uni\",\"query\":\"ta~name\",\"min_generation\":{}}}",
            uni_gen + 5
        );
        let (status, body) = c.request("POST", "/v1/complete", &req).unwrap();
        assert_eq!(status, 409, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        assert!(
            !as_bool(&get(&v, "retryable")),
            "caught-up refusal is final"
        );
    }

    f1.shutdown();
    f2.shutdown();
    leader.shutdown();
    for d in [&leader_dir, &f1_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Schema writes on a follower are misdirected: 421 plus the leader's
/// address in `x-ipe-leader`, and nothing is applied locally.
#[test]
fn follower_refuses_schema_writes_with_leader_address() {
    let leader_dir = tmp_dir("writes-leader");
    let (leader, mut lc) = leader_server(&leader_dir, 0);
    let leader_addr = leader.addr().to_string();
    let uni = fixtures::university().to_json();
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let (follower, mut fc) = follower_server(&leader_addr, None);
    await_ready(&mut fc);
    await_applied(&mut fc, 1);

    let resp = fc
        .request_with("PUT", "/v1/schemas/mine", &uni, &[])
        .unwrap();
    assert_eq!(resp.status, 421, "{}", resp.body);
    assert_eq!(resp.header("x-ipe-leader"), Some(leader_addr.as_str()));
    let resp = fc
        .request_with("DELETE", "/v1/schemas/uni", "", &[])
        .unwrap();
    assert_eq!(resp.status, 421, "{}", resp.body);
    let (status, _) = fc.request("GET", "/v1/schemas/mine", "").unwrap();
    assert_eq!(status, 404, "rejected write must not register anything");

    // Data loads stay node-local: a follower can hold its own instance.
    let (status, body) = fc
        .request("PUT", "/v1/data/uni", "{\"gen\":{\"objects_per_class\":2}}")
        .unwrap();
    assert_eq!(status, 200, "{body}");

    follower.shutdown();
    leader.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
}

/// A follower that cannot reach its leader is not ready: `/readyz` is 503
/// with lag detail, and generation-pinned reads are deferred as
/// retryable rather than served stale.
#[test]
fn unreachable_leader_means_not_ready_and_deferred_reads() {
    // Nothing listens here: connect() fails immediately, so the follower
    // stays in its backoff loop without ever catching up.
    let (follower, mut fc) = follower_server("127.0.0.1:1", None);

    let (status, body) = fc.request("GET", "/readyz", "").unwrap();
    assert_eq!(status, 503, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(!as_bool(&get(&v, "ready")));
    assert!(!as_bool(&get(&v, "connected")));

    let (status, body) = fc
        .request(
            "POST",
            "/v1/complete",
            "{\"schema\":\"default\",\"query\":\"ta~name\",\"min_generation\":1}",
        )
        .unwrap();
    assert_eq!(status, 409, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(
        as_bool(&get(&v, "retryable")),
        "a lagging follower's refusal must be retryable: {body}"
    );

    follower.shutdown();
}

/// A follower joining after the leader compacted its WAL bootstraps from
/// a snapshot — including a delete the surviving log never mentions —
/// then switches to live records.
#[test]
fn late_joiner_bootstraps_from_snapshot() {
    let leader_dir = tmp_dir("snap-leader");
    // snapshot_every=2: the horizon moves almost immediately.
    let (leader, mut lc) = leader_server(&leader_dir, 2);
    let uni = fixtures::university().to_json();
    let assembly = fixtures::assembly().to_json();
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    lc.request("PUT", "/v1/schemas/doomed", &assembly).unwrap();
    let (status, _) = lc.request("DELETE", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 200);
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();

    let leader_addr = leader.addr().to_string();
    let (follower, mut fc) = follower_server(&leader_addr, None);
    await_ready(&mut fc);

    let (status, body) = fc.request("GET", "/v1/repl/status", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(
        as_u64(&get(&v, "snapshots_installed")) >= 1,
        "late joiner must have taken the snapshot path: {body}"
    );
    let (status, body) = fc.request("GET", "/v1/schemas/uni", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 2);
    let (status, _) = fc.request("GET", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 404, "snapshot-erased schema must not appear");

    // Live tail after the bootstrap: a fresh write still arrives.
    lc.request("PUT", "/v1/schemas/late", &assembly).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, _) = fc.request("GET", "/v1/schemas/late", "").unwrap();
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "live record never arrived");
        std::thread::sleep(Duration::from_millis(20));
    }

    follower.shutdown();
    leader.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
}

/// Deletes replicate, and on every node the delete also drops the loaded
/// data instance — the regression behind `purged_data`.
#[test]
fn delete_propagates_and_purges_loaded_data() {
    let leader_dir = tmp_dir("del-leader");
    let (leader, mut lc) = leader_server(&leader_dir, 0);
    let leader_addr = leader.addr().to_string();
    let (follower, mut fc) = follower_server(&leader_addr, None);

    let uni = fixtures::university().to_json();
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let (status, body) = lc
        .request("PUT", "/v1/data/uni", "{\"gen\":{\"objects_per_class\":2}}")
        .unwrap();
    assert_eq!(status, 200, "{body}");

    await_ready(&mut fc);
    await_applied(&mut fc, 1);
    // The follower loads its own instance for the replicated schema.
    let (status, body) = fc
        .request("PUT", "/v1/data/uni", "{\"gen\":{\"objects_per_class\":2}}")
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, body) = lc.request("DELETE", "/v1/schemas/uni", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(
        as_bool(&get(&v, "purged_data")),
        "delete must drop the loaded instance: {body}"
    );
    let (status, _) = lc.request("GET", "/v1/data/uni", "").unwrap();
    assert_eq!(status, 404, "leader data must be gone after schema delete");

    await_applied(&mut fc, 2);
    let (status, _) = fc.request("GET", "/v1/schemas/uni", "").unwrap();
    assert_eq!(status, 404, "delete must replicate");
    let (status, _) = fc.request("GET", "/v1/data/uni", "").unwrap();
    assert_eq!(status, 404, "follower data must be purged by the delete");

    follower.shutdown();
    leader.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
}

/// A durable follower restarted after missing writes resumes from its
/// persisted seq (no snapshot re-bootstrap while the log suffix is still
/// available) and catches up.
#[test]
fn restarted_follower_resumes_from_persisted_seq() {
    let leader_dir = tmp_dir("resume-leader");
    let follower_dir = tmp_dir("resume-follower");
    let (leader, mut lc) = leader_server(&leader_dir, 0);
    let leader_addr = leader.addr().to_string();
    let uni = fixtures::university().to_json();
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();

    {
        let (follower, mut fc) = follower_server(&leader_addr, Some(&follower_dir));
        await_ready(&mut fc);
        await_applied(&mut fc, 1);
        follower.shutdown();
    }

    // Writes the follower missed while down.
    lc.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    let assembly = fixtures::assembly().to_json();
    lc.request("PUT", "/v1/schemas/extra", &assembly).unwrap();

    let (follower, mut fc) = follower_server(&leader_addr, Some(&follower_dir));
    await_ready(&mut fc);
    await_applied(&mut fc, 3);
    let (status, body) = fc.request("GET", "/v1/repl/status", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(
        as_u64(&get(&v, "snapshots_installed")),
        0,
        "resume within the log suffix must not re-bootstrap: {body}"
    );
    let (status, body) = fc.request("GET", "/v1/schemas/uni", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 2);
    let (status, _) = fc.request("GET", "/v1/schemas/extra", "").unwrap();
    assert_eq!(status, 200);

    follower.shutdown();
    leader.shutdown();
    for d in [&leader_dir, &follower_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// `/readyz` on a leader (and a replication-less node) reports ready; the
/// repl section of `/metrics` carries the roles.
#[test]
fn leader_and_standalone_report_ready() {
    let leader_dir = tmp_dir("ready-leader");
    let (leader, mut lc) = leader_server(&leader_dir, 0);
    let (status, body) = lc.request("GET", "/readyz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = lc.request("GET", "/v1/repl/status", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "role"), Value::Str("leader".to_owned()));

    let standalone = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        ..Default::default()
    })
    .unwrap();
    let mut sc = Client::new(standalone.addr().to_string());
    let (status, _) = sc.request("GET", "/readyz", "").unwrap();
    assert_eq!(status, 200);
    let (status, body) = sc.request("GET", "/v1/repl/status", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "role"), Value::Str("none".to_owned()));
    // A memory-only node cannot serve the stream.
    let (status, body) = sc.request("GET", "/v1/repl/stream", "").unwrap();
    assert_eq!(status, 400, "{body}");

    standalone.shutdown();
    leader.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
}
