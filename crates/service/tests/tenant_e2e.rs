//! End-to-end multi-tenancy: namespace isolation, admission quotas with
//! the unified retry envelope, delete-purge, quota persistence across
//! restarts, and follower convergence on tenant-tagged WAL records.

use ipe_schema::fixtures;
use ipe_service::{Client, FsyncPolicy, Server, ServiceConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ipe-tenant-e2e-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server(dir: Option<&Path>) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        queue_depth: 32,
        request_timeout: Duration::from_secs(5),
        data_dir: dir.map(Path::to_path_buf),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
        ..Default::default()
    })
    .expect("bind server");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn follower_server(leader_addr: &str) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        queue_depth: 32,
        request_timeout: Duration::from_secs(5),
        follow: Some(leader_addr.to_owned()),
        ..Default::default()
    })
    .expect("bind follower");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key} in {v:?}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

fn as_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

fn as_str(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn await_applied(client: &mut Client, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client.request("GET", "/v1/repl/status", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        if as_u64(&get(&v, "applied_seq")) >= seq && as_u64(&get(&v, "lag_seq")) == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "follower stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The same schema name in two tenants is two schemas: different bodies,
/// different completions, separate data instances, and per-tenant listing
/// under bare names. The legacy unprefixed routes are the `default`
/// tenant.
#[test]
fn tenant_namespaces_isolate_schemas_and_data() {
    let (server, mut c) = server(None);
    for t in ["a", "b"] {
        let (status, body) = c.request("PUT", &format!("/v1/tenants/{t}"), "{}").unwrap();
        assert_eq!(status, 201, "{body}");
    }
    // Same name, different schemas.
    let uni = fixtures::university().to_json();
    let asm = fixtures::assembly().to_json();
    let (status, body) = c.request("PUT", "/v1/t/a/schemas/s", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = c.request("PUT", "/v1/t/b/schemas/s", &asm).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_str(&get(&v, "name")), "s", "responses use bare names");

    // Each tenant completes against its own schema: `ta~name` parses in
    // the university schema, and the same query against the assembly
    // schema resolves nothing (422), proving the bodies are distinct.
    let req = "{\"schema\":\"s\",\"query\":\"ta~name\"}";
    let (status, body) = c.request("POST", "/v1/t/a/complete", req).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_str(&get(&v, "schema")), "s");
    let (status, _) = c.request("POST", "/v1/t/b/complete", req).unwrap();
    assert_eq!(status, 422, "assembly schema has no `ta` class");

    // Data instances are scoped too: loading tenant a's leaves b's 404.
    let (status, body) = c
        .request(
            "PUT",
            "/v1/t/a/data/s",
            "{\"gen\":{\"objects_per_class\":2,\"seed\":7}}",
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _) = c.request("GET", "/v1/t/a/data/s", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = c.request("GET", "/v1/t/b/data/s", "").unwrap();
    assert_eq!(status, 404, "data must not leak across tenants");

    // Listings are per-tenant with bare names; the legacy route shows
    // only `default` (which owns nothing here).
    let (status, body) = c.request("GET", "/v1/t/a/schemas", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"s\""), "{body}");
    let (status, body) = c.request("GET", "/v1/schemas", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        !body.contains("\"s\""),
        "default must not see tenant schemas: {body}"
    );

    // Unknown tenants 404 before any work happens.
    let (status, body) = c.request("POST", "/v1/t/ghost/complete", req).unwrap();
    assert_eq!(status, 404, "{body}");
    server.shutdown();
}

/// Quota exhaustion answers `429` with the unified machine-readable
/// envelope (`retryable`, `retry_after_ms`, `tenant`) and a `Retry-After`
/// header; the caught-up replica `409` carries `retryable: false` and no
/// hint, while a lagging replica's carries both.
#[test]
fn retry_envelopes_are_machine_readable() {
    let (quota_srv, mut c) = server(None);
    let (status, body) = c
        .request(
            "PUT",
            "/v1/tenants/capped",
            "{\"rate_per_sec\": 0.001, \"burst\": 2}",
        )
        .unwrap();
    assert_eq!(status, 201, "{body}");
    let uni = fixtures::university().to_json();
    let (status, body) = c.request("PUT", "/v1/t/capped/schemas/s", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let req = "{\"schema\":\"s\",\"query\":\"ta~name\"}";
    let (status, body) = c.request("POST", "/v1/t/capped/complete", req).unwrap();
    assert_eq!(status, 200, "burst allowance: {body}");

    let resp = c
        .request_with("POST", "/v1/t/capped/complete", req, &[])
        .unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    let v = serde_json::parse_value_text(&resp.body).unwrap();
    assert!(as_bool(&get(&v, "retryable")));
    assert!(as_u64(&get(&v, "retry_after_ms")) > 0);
    assert_eq!(as_str(&get(&v, "tenant")), "capped");
    let after: u64 = resp
        .header("retry-after")
        .expect("Retry-After header")
        .parse()
        .expect("whole seconds");
    assert!(after >= 1);

    // Control-plane routes stay reachable for a throttled tenant.
    let (status, body) = c.request("GET", "/v1/tenants/capped", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(as_u64(&get(&v, "throttled")) >= 1, "{body}");
    quota_srv.shutdown();

    // The replica-side 409s share the field contract. A follower that
    // cannot reach its leader defers pinned reads with a backoff hint...
    let (follower, mut fc) = follower_server("127.0.0.1:1");
    let (status, body) = fc
        .request(
            "POST",
            "/v1/complete",
            "{\"schema\":\"s\",\"query\":\"ta~name\",\"min_generation\":1}",
        )
        .unwrap();
    assert_eq!(status, 409, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(as_bool(&get(&v, "retryable")));
    let hint = as_u64(&get(&v, "retry_after_ms"));
    assert!((25..=2_000).contains(&hint), "clamped hint, got {hint}");
    follower.shutdown();

    // ...while a caught-up node's refusal is final: no hint at all.
    let (srv, mut c) = server(None);
    let (status, body) = c.request("PUT", "/v1/schemas/s", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = c
        .request(
            "POST",
            "/v1/complete",
            "{\"schema\":\"s\",\"query\":\"ta~name\",\"min_generation\":99}",
        )
        .unwrap();
    assert_eq!(status, 409, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert!(!as_bool(&get(&v, "retryable")));
    assert!(
        v.get("retry_after_ms").is_none(),
        "final refusals carry no retry hint: {body}"
    );
    srv.shutdown();
}

/// `DELETE /v1/tenants/:t` atomically purges everything the tenant owns —
/// schemas, data instances, cache partition, index sidecars — reports the
/// counts, and the purge survives a restart (the WAL carries the
/// deletes). Other tenants' same-named schemas are untouched.
#[test]
fn tenant_delete_purges_namespace_durably() {
    let dir = tmp_dir("purge");
    let uni = fixtures::university().to_json();
    let req = "{\"schema\":\"s\",\"query\":\"ta~name\"}";
    {
        let (server, mut c) = server(Some(&dir));
        let (status, body) = c.request("PUT", "/v1/tenants/doomed", "{}").unwrap();
        assert_eq!(status, 201, "{body}");
        for name in ["s", "s2"] {
            let (status, body) = c
                .request("PUT", &format!("/v1/t/doomed/schemas/{name}"), &uni)
                .unwrap();
            assert_eq!(status, 200, "{body}");
        }
        let (status, body) = c.request("PUT", "/v1/schemas/s", &uni).unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) = c
            .request(
                "PUT",
                "/v1/t/doomed/data/s",
                "{\"gen\":{\"objects_per_class\":2,\"seed\":7}}",
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        // Warm the doomed tenant's cache partition so the purge has
        // entries to count.
        let (status, _) = c.request("POST", "/v1/t/doomed/complete", req).unwrap();
        assert_eq!(status, 200);

        let (status, body) = c.request("DELETE", "/v1/tenants/doomed", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        assert_eq!(as_u64(&get(&v, "purged_schemas")), 2, "{body}");
        assert_eq!(as_u64(&get(&v, "purged_data")), 1, "{body}");
        assert!(as_u64(&get(&v, "purged_cache_entries")) >= 1, "{body}");
        assert!(as_u64(&get(&v, "purged_cache_bytes")) > 0, "{body}");

        let (status, _) = c.request("GET", "/v1/t/doomed/schemas/s", "").unwrap();
        assert_eq!(status, 404, "deleted tenant must not serve");
        let (status, _) = c.request("GET", "/v1/schemas/s", "").unwrap();
        assert_eq!(status, 200, "the default tenant's `s` must survive");
        server.shutdown();
    }
    // Restart on the same directory: the purge was WAL-logged, so the
    // doomed tenant's schemas stay gone while default's recover.
    let (server, mut c) = server(Some(&dir));
    let (status, _) = c.request("GET", "/v1/t/doomed/schemas/s", "").unwrap();
    assert_eq!(status, 404, "purge must survive recovery");
    let (status, body) = c.request("GET", "/v1/schemas/s", "").unwrap();
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Tenant configs persist in `tenants.json`: quotas and defaults survive
/// a restart, and recovered scoped schemas land back in their tenants.
#[test]
fn tenant_quotas_and_schemas_survive_restart() {
    let dir = tmp_dir("restart");
    let uni = fixtures::university().to_json();
    {
        let (server, mut c) = server(Some(&dir));
        let (status, body) = c
            .request(
                "PUT",
                "/v1/tenants/acme",
                "{\"rate_per_sec\": 50.0, \"burst\": 7, \"default_e\": 3}",
            )
            .unwrap();
        assert_eq!(status, 201, "{body}");
        let (status, body) = c.request("PUT", "/v1/t/acme/schemas/s", &uni).unwrap();
        assert_eq!(status, 200, "{body}");
        server.shutdown();
    }
    let (server, mut c) = server(Some(&dir));
    let (status, body) = c.request("GET", "/v1/tenants/acme", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let config = get(&v, "config");
    assert_eq!(as_u64(&get(&config, "burst")), 7, "{body}");
    assert_eq!(as_u64(&get(&config, "default_e")), 3, "{body}");
    // The recovered schema is back under its tenant, and the tenant's
    // default_e applies to requests that omit `e` (the query response
    // echoes the effective E).
    let (status, body) = c
        .request(
            "PUT",
            "/v1/t/acme/data/s",
            "{\"gen\":{\"objects_per_class\":2,\"seed\":7}}",
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = c
        .request(
            "POST",
            "/v1/t/acme/query",
            "{\"schema\":\"s\",\"query\":\"ta~name\"}",
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "e")), 3, "tenant default_e must apply");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Followers apply tenant-tagged WAL records: scoped schemas converge
/// (auto-creating the namespace), scoped reads serve on the replica,
/// scoped writes are misdirected with the leader's address, and a tenant
/// purge on the leader propagates record-by-record.
#[test]
fn followers_converge_on_tenant_tagged_records() {
    let leader_dir = tmp_dir("repl-leader");
    let (leader, mut lc) = server(Some(&leader_dir));
    let leader_addr = leader.addr().to_string();
    let uni = fixtures::university().to_json();

    let (status, body) = lc.request("PUT", "/v1/tenants/acme", "{}").unwrap();
    assert_eq!(status, 201, "{body}");
    let (status, body) = lc.request("PUT", "/v1/t/acme/schemas/s", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = lc.request("PUT", "/v1/schemas/plain", &uni).unwrap();
    assert_eq!(status, 200, "{body}");

    let (follower, mut fc) = follower_server(&leader_addr);
    await_applied(&mut fc, 2);

    // The namespace materialized on the follower from the records alone.
    let (status, body) = fc.request("GET", "/v1/t/acme/schemas/s", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_str(&get(&v, "name")), "s");
    let (status, body) = fc
        .request(
            "POST",
            "/v1/t/acme/complete",
            "{\"schema\":\"s\",\"query\":\"ta~name\"}",
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    // Scoped writes on the replica are misdirected like unscoped ones.
    let resp = fc
        .request_with("PUT", "/v1/t/acme/schemas/other", &uni, &[])
        .unwrap();
    assert_eq!(resp.status, 421, "{}", resp.body);
    assert_eq!(resp.header("x-ipe-leader"), Some(leader_addr.as_str()));

    // Purging the tenant on the leader removes it from the follower too
    // (as WAL deletes), leaving the default tenant's schema alone.
    let (status, body) = lc.request("DELETE", "/v1/tenants/acme", "").unwrap();
    assert_eq!(status, 200, "{body}");
    await_applied(&mut fc, 3); // seq 3 = the scoped delete
    let (status, _) = fc.request("GET", "/v1/t/acme/schemas/s", "").unwrap();
    assert_eq!(status, 404, "tenant purge must propagate");
    let (status, _) = fc.request("GET", "/v1/schemas/plain", "").unwrap();
    assert_eq!(status, 200);

    follower.shutdown();
    leader.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
}
