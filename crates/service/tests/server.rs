//! End-to-end tests over a real socket: registry round-trips, Figure-2
//! answers through the HTTP API, cache hits, hot-swap invalidation,
//! metrics, error paths, and graceful shutdown.

use ipe_schema::fixtures;
use ipe_service::{Client, Server, ServiceConfig};
use serde::Value;
use std::time::Duration;

/// A small test server on an ephemeral port, with the university fixture
/// preloaded as `default`.
fn start_server() -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 4,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 4,
        batch_threads: 2,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

fn completion_texts(body: &str) -> Vec<String> {
    let v = serde_json::parse_value_text(body).expect("valid JSON");
    let Value::Seq(items) = get(&v, "completions") else {
        panic!("completions is not an array: {body}");
    };
    items
        .iter()
        .map(|c| match get(c, "text") {
            Value::Str(s) => s,
            other => panic!("text is not a string: {other:?}"),
        })
        .collect()
}

#[test]
fn healthz_and_unknown_route() {
    let (server, mut client) = start_server();
    let (status, body) = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ok"));
    let (status, _) = client.request("GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// The flagship `ta~name` query through the HTTP API: the two Section
/// 2.2.2 completions come back, and the identical second request is
/// served from the cache with identical results.
#[test]
fn complete_ta_name_and_cache_hit() {
    let (server, mut client) = start_server();
    let req = r#"{"query": "ta ~ name"}"#;
    let (status, first) = client.request("POST", "/v1/complete", req).unwrap();
    assert_eq!(status, 200, "{first}");
    let texts = completion_texts(&first);
    assert_eq!(texts.len(), 2, "{texts:?}");
    assert!(texts.contains(&"ta@>grad@>student@>person.name".to_owned()));
    assert!(texts.contains(&"ta@>instructor@>teacher@>employee@>person.name".to_owned()));
    let v = serde_json::parse_value_text(&first).unwrap();
    assert_eq!(get(&v, "cached"), Value::Bool(false));
    // The whitespace variant normalizes onto the same cache key.
    assert_eq!(get(&v, "query"), Value::Str("ta~name".to_owned()));

    let (status, second) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 200);
    let v2 = serde_json::parse_value_text(&second).unwrap();
    assert_eq!(get(&v2, "cached"), Value::Bool(true));
    assert_eq!(completion_texts(&second), texts);
    // Cached responses repeat the original run's search counters.
    assert_eq!(
        as_u64(&get(&get(&v, "stats"), "calls")),
        as_u64(&get(&get(&v2, "stats"), "calls"))
    );
    server.shutdown();
}

/// Distinct configs must not share cache entries.
#[test]
fn config_changes_miss_the_cache() {
    let (server, mut client) = start_server();
    let (_, first) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let (_, second) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name", "e": 2}"#)
        .unwrap();
    let v = serde_json::parse_value_text(&second).unwrap();
    assert_eq!(
        get(&v, "cached"),
        Value::Bool(false),
        "different E: {first}"
    );
    server.shutdown();
}

/// `PUT /v1/schemas/:name` registers new schemas and hot-swaps existing
/// ones: the generation bumps and previously-cached results are not
/// served for the new version.
#[test]
fn put_schema_hot_swap_invalidates_cache() {
    let (server, mut client) = start_server();
    let uni = fixtures::university().to_json();
    let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 1);

    let req = r#"{"schema": "uni", "query": "ta~name"}"#;
    client.request("POST", "/v1/complete", req).unwrap();
    let (_, warm) = client.request("POST", "/v1/complete", req).unwrap();
    let warm_v = serde_json::parse_value_text(&warm).unwrap();
    assert_eq!(get(&warm_v, "cached"), Value::Bool(true));

    // Hot-swap the same name: generation 2, cache cold again.
    let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 2);
    assert!(as_u64(&get(&v, "purged_cache_entries")) >= 1);

    let (_, after) = client.request("POST", "/v1/complete", req).unwrap();
    let after_v = serde_json::parse_value_text(&after).unwrap();
    assert_eq!(get(&after_v, "cached"), Value::Bool(false));
    assert_eq!(as_u64(&get(&after_v, "generation")), 2);

    // The listing reflects both schemas.
    let (status, body) = client.request("GET", "/v1/schemas", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"uni\"") && body.contains("\"default\""),
        "{body}"
    );
    server.shutdown();
}

/// `DELETE /v1/schemas/:name` unregisters the schema, purges its cached
/// completions, and 404s for unknown (or already-deleted) names.
#[test]
fn delete_schema_purges_cache_and_404s_unknown() {
    let (server, mut client) = start_server();
    let uni = fixtures::university().to_json();
    client.request("PUT", "/v1/schemas/doomed", &uni).unwrap();
    // Warm one entry for the doomed schema and one for default.
    let req = r#"{"schema": "doomed", "query": "ta~name"}"#;
    client.request("POST", "/v1/complete", req).unwrap();
    client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();

    let (status, body) = client.request("DELETE", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "name"), Value::Str("doomed".to_owned()));
    assert_eq!(as_u64(&get(&v, "generation")), 1);
    assert_eq!(
        as_u64(&get(&v, "purged_cache_entries")),
        1,
        "only the doomed schema's entry is purged"
    );

    // Completions against the deleted name now 404; the default schema's
    // cache entry survived.
    let (status, _) = client.request("POST", "/v1/complete", req).unwrap();
    assert_eq!(status, 404);
    let (_, warm) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let warm_v = serde_json::parse_value_text(&warm).unwrap();
    assert_eq!(get(&warm_v, "cached"), Value::Bool(true));

    // Deleting again (or a never-registered name) is a 404.
    let (status, _) = client.request("DELETE", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/v1/schemas/ghost", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// `GET /v1/schemas/:name` returns that schema's summary without forcing
/// a full listing.
#[test]
fn get_schema_by_name() {
    let (server, mut client) = start_server();
    let (status, body) = client.request("GET", "/v1/schemas/default", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "name"), Value::Str("default".to_owned()));
    assert_eq!(as_u64(&get(&v, "generation")), 1);
    assert!(as_u64(&get(&v, "classes")) > 0);
    let (status, _) = client.request("GET", "/v1/schemas/ghost", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn error_paths_return_structured_errors() {
    let (server, mut client) = start_server();
    // Unknown schema.
    let (status, body) = client
        .request(
            "POST",
            "/v1/complete",
            r#"{"schema": "ghost", "query": "a~b"}"#,
        )
        .unwrap();
    assert_eq!(status, 404, "{body}");
    // Unparseable query.
    let (status, _) = client
        .request("POST", "/v1/complete", r#"{"query": "~~~"}"#)
        .unwrap();
    assert_eq!(status, 400);
    // Unknown root class: engine error, not a server error.
    let (status, _) = client
        .request("POST", "/v1/complete", r#"{"query": "ghost~name"}"#)
        .unwrap();
    assert_eq!(status, 422);
    // Invalid JSON body.
    let (status, _) = client.request("POST", "/v1/complete", "{nope").unwrap();
    assert_eq!(status, 400);
    // Invalid schema upload.
    let (status, _) = client.request("PUT", "/v1/schemas/bad", "{}").unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

/// `/metrics` renders the standard obs report extended with the service
/// section, and its hit/miss counts are consistent with the traffic.
#[test]
fn metrics_reflect_cache_traffic() {
    let (server, mut client) = start_server();
    for _ in 0..3 {
        client
            .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
            .unwrap();
    }
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).expect("metrics is valid JSON");
    let service = get(&v, "service");
    let cache = get(&service, "cache");
    // This server is private to the test, so the gauges are exact: one
    // miss (first request), then hits.
    assert_eq!(as_u64(&get(&cache, "misses")), 1);
    assert_eq!(as_u64(&get(&cache, "hits")), 2);
    assert_eq!(as_u64(&get(&cache, "entries")), 1);
    assert!(as_u64(&get(&service, "requests_total")) >= 3);
    // The global obs sections are present (values are process-wide).
    assert!(v.get("counters").is_some());
    assert!(v.get("timers").is_some());
    server.shutdown();
}

/// `POST /v1/shutdown` answers the request, then the server drains and
/// `join` returns.
#[test]
fn shutdown_endpoint_stops_the_server() {
    let (server, mut client) = start_server();
    let addr = server.addr();
    let (status, body) = client.request("POST", "/v1/shutdown", "").unwrap();
    assert_eq!(status, 200, "{body}");
    server.join();
    // The port no longer accepts new work.
    let mut late = Client::new(addr.to_string());
    assert!(late.request("GET", "/healthz", "").is_err());
}

/// `POST /v1/complete/batch`: per-item outcomes in submission order,
/// whitespace-variant queries normalize onto one cache key, parse
/// failures are per-item errors (not a request failure), and the batch
/// shares the single-endpoint cache.
#[test]
fn batch_endpoint_completes_and_caches() {
    let (server, mut client) = start_server();
    let req = r#"{"queries": ["ta ~ name", "department~take", "~~~"], "threads": 2}"#;
    let (status, body) = client.request("POST", "/v1/complete/batch", req).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(items) = get(&v, "items") else {
        panic!("items is not an array: {body}");
    };
    assert_eq!(items.len(), 3);
    assert_eq!(get(&items[0], "status"), Value::Str("ok".to_owned()));
    assert_eq!(get(&items[0], "cached"), Value::Bool(false));
    // Whitespace normalization applies per item.
    assert_eq!(get(&items[0], "query"), Value::Str("ta~name".to_owned()));
    assert_eq!(get(&items[1], "status"), Value::Str("ok".to_owned()));
    assert_eq!(get(&items[2], "status"), Value::Str("error".to_owned()));
    assert!(items[2].get("error").is_some(), "{body}");

    // The batch populated the same cache the single endpoint reads.
    let (_, single) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let sv = serde_json::parse_value_text(&single).unwrap();
    assert_eq!(get(&sv, "cached"), Value::Bool(true), "{single}");

    // And a repeat batch is served from the cache.
    let (_, again) = client.request("POST", "/v1/complete/batch", req).unwrap();
    let av = serde_json::parse_value_text(&again).unwrap();
    let Value::Seq(items) = get(&av, "items") else {
        panic!("items is not an array: {again}");
    };
    assert_eq!(get(&items[0], "cached"), Value::Bool(true));
    assert_eq!(get(&items[1], "cached"), Value::Bool(true));
    server.shutdown();
}

/// Batch validation errors are whole-request errors: unknown schema is a
/// 404, an over-cap batch is a 400.
#[test]
fn batch_endpoint_rejects_bad_requests() {
    let (server, mut client) = start_server();
    let (status, _) = client
        .request(
            "POST",
            "/v1/complete/batch",
            r#"{"schema": "ghost", "queries": ["a~b"]}"#,
        )
        .unwrap();
    assert_eq!(status, 404);
    let many: Vec<String> = (0..257).map(|_| "\"ta~name\"".to_owned()).collect();
    let body = format!("{{\"queries\": [{}]}}", many.join(","));
    let (status, resp) = client.request("POST", "/v1/complete/batch", &body).unwrap();
    assert_eq!(status, 400, "{resp}");
    server.shutdown();
}

/// A combinatorially heavy item trips its per-item deadline and reports
/// `deadline_exceeded` in its own slot, while the cheap item in the same
/// batch completes — the acceptance scenario for deadline isolation.
#[test]
fn batch_deadline_is_per_item() {
    use ipe_schema::{Primitive, SchemaBuilder};
    let (server, mut client) = start_server();
    // A fully-connected 12-class schema whose only `goal` attribute sits
    // on the root class: `c0~e10_11~goal` has no acyclic completion, so
    // the exhaustive multi-tilde search would run for hours without the
    // deadline, and never trips the result cap.
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..12)
        .map(|i| b.class(&format!("c{i}")).unwrap())
        .collect();
    for (i, &source) in classes.iter().enumerate() {
        for (j, &target) in classes.iter().enumerate() {
            if i != j {
                b.assoc(source, target, &format!("e{i}_{j}")).unwrap();
            }
        }
    }
    b.attr(classes[0], "goal", Primitive::Real).unwrap();
    let dense = b.build().unwrap();
    let (status, body) = client
        .request("PUT", "/v1/schemas/dense", &dense.to_json())
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let req = r#"{"schema": "dense", "queries": ["c0.goal", "c0~e10_11~goal"],
                  "deadline_ms": 150, "threads": 2}"#;
    let started = std::time::Instant::now();
    let (status, body) = client.request("POST", "/v1/complete/batch", req).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(items) = get(&v, "items") else {
        panic!("items is not an array: {body}");
    };
    assert_eq!(
        get(&items[0], "status"),
        Value::Str("ok".to_owned()),
        "{body}"
    );
    assert_eq!(
        get(&items[1], "status"),
        Value::Str("deadline_exceeded".to_owned()),
        "{body}"
    );
    assert_eq!(as_u64(&get(&v, "deadline_hits")), 1);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "batch stalled: {:?}",
        started.elapsed()
    );
    server.shutdown();
}

/// Sends raw bytes and returns the full response text (the server closes
/// rejected connections, so read-to-end terminates).
fn raw_request(addr: &str, payload: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload.as_bytes()).expect("write");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn raw_status(resp: &str) -> u16 {
    resp.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"))
}

/// A declared body beyond the 32 MiB cap is answered `413` from the
/// headers alone — the server never tries to read the body.
#[test]
fn oversized_declared_body_is_413() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let resp = raw_request(
        &addr,
        "POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 33554433\r\n\r\n",
    );
    assert_eq!(raw_status(&resp), 413, "{resp}");
    server.shutdown();
}

/// Conflicting duplicate `Content-Length` headers (a request-smuggling
/// vector) are a `400`; *identical* duplicates are tolerated.
#[test]
fn duplicate_content_length_handling() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let resp = raw_request(
        &addr,
        "POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}",
    );
    assert_eq!(raw_status(&resp), 400, "{resp}");
    assert!(resp.contains("conflicting"), "{resp}");

    let resp = raw_request(
        &addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(raw_status(&resp), 200, "{resp}");
    server.shutdown();
}

/// Header-field floods are answered `431`: too many header lines, or one
/// absurdly long line.
#[test]
fn header_floods_are_431() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let mut flood = String::from("GET /healthz HTTP/1.1\r\nHost: t\r\n");
    for i in 0..101 {
        flood.push_str(&format!("X-Flood-{i}: x\r\n"));
    }
    flood.push_str("\r\n");
    let resp = raw_request(&addr, &flood);
    assert_eq!(raw_status(&resp), 431, "{resp}");

    let long_line = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Long: {}\r\n\r\n",
        "a".repeat(9 * 1024)
    );
    let resp = raw_request(&addr, &long_line);
    assert_eq!(raw_status(&resp), 431, "{resp}");

    let long_target = format!("GET /{} HTTP/1.1\r\nHost: t\r\n\r\n", "a".repeat(9 * 1024));
    let resp = raw_request(&addr, &long_target);
    assert_eq!(raw_status(&resp), 431, "{resp}");
    server.shutdown();
}

/// A test server with explicit tracing/flight-recorder knobs.
fn start_traced_server(tune: impl FnOnce(&mut ServiceConfig)) -> (Server, Client) {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 4,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 4,
        batch_threads: 2,
        ..Default::default()
    };
    tune(&mut config);
    let server = Server::start(config).expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    let client = Client::new(server.addr().to_string());
    (server, client)
}

/// Every span must close the parent chain: parent 0 is the root, any
/// other parent must be the id of another span in the same trace.
fn assert_parent_linkage(spans: &[Value], body: &str) {
    let ids: Vec<u64> = spans.iter().map(|s| as_u64(&get(s, "id"))).collect();
    for s in spans {
        let parent = as_u64(&get(s, "parent"));
        assert!(
            parent == 0 || ids.contains(&parent),
            "span {:?} has dangling parent {parent}: {body}",
            get(s, "name")
        );
    }
}

fn span_names(spans: &[Value]) -> Vec<String> {
    spans
        .iter()
        .map(|s| match get(s, "name") {
            Value::Str(s) => s,
            other => panic!("span name is not a string: {other:?}"),
        })
        .collect()
}

/// A propagated `x-ipe-trace-id` is echoed back and keys a retrievable
/// trace at `/v1/debug/requests/:trace_id` whose span tree covers the
/// request lifecycle (http -> cache probe -> search -> per-segment) with
/// intact parent linkage.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "tracing is compiled out")]
fn trace_id_propagates_and_trace_is_retrievable() {
    let (server, mut client) = start_traced_server(|_| {});
    let resp = client
        .request_with(
            "POST",
            "/v1/complete",
            r#"{"query": "ta~name"}"#,
            &[("x-ipe-trace-id", "myid123")],
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.header("x-ipe-trace-id"),
        Some("myid123"),
        "propagated trace id must be echoed"
    );

    let (status, body) = client
        .request("GET", "/v1/debug/requests/myid123", "")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).expect("trace is valid JSON");
    assert_eq!(get(&v, "trace_id"), Value::Str("myid123".to_owned()));
    assert_eq!(get(&v, "route"), Value::Str("complete".to_owned()));
    let Value::Seq(spans) = get(&v, "spans") else {
        panic!("spans is not an array: {body}");
    };
    assert!(
        spans.len() >= 4,
        "want >= 4 spans, got {}: {body}",
        spans.len()
    );
    let names = span_names(&spans);
    for expected in ["http", "cache.probe", "search", "search.segment"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing span {expected}: {names:?}"
        );
    }
    assert_parent_linkage(&spans, &body);
    // The segment search span carries the engine's prune counters.
    let seg = spans
        .iter()
        .find(|s| matches!(get(s, "name"), Value::Str(n) if n == "search.segment"))
        .unwrap();
    let attrs = get(seg, "attrs");
    assert!(attrs.get("calls").is_some(), "{body}");
    server.shutdown();
}

/// Without a propagated id the server generates one, echoes it, and the
/// trace is retrievable under the generated id.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "tracing is compiled out")]
fn generated_trace_id_is_echoed_and_retained() {
    let (server, mut client) = start_traced_server(|_| {});
    let resp = client
        .request_with("POST", "/v1/complete", r#"{"query": "ta~name"}"#, &[])
        .unwrap();
    let id = resp
        .header("x-ipe-trace-id")
        .expect("generated trace id in response")
        .to_owned();
    assert!(!id.is_empty());
    let (status, body) = client
        .request("GET", &format!("/v1/debug/requests/{id}"), "")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    // An invalid propagated id (spaces) is replaced, not echoed.
    let resp = client
        .request_with(
            "GET",
            "/healthz",
            "",
            &[("x-ipe-trace-id", "not a valid id")],
        )
        .unwrap();
    assert_ne!(resp.header("x-ipe-trace-id"), Some("not a valid id"));
    server.shutdown();
}

/// Trace ids cross the batch fan-out: the `batch.item` spans recorded on
/// worker threads parent back into the request's span tree.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "tracing is compiled out")]
fn batch_trace_spans_cross_worker_threads() {
    let (server, mut client) = start_traced_server(|_| {});
    let resp = client
        .request_with(
            "POST",
            "/v1/complete/batch",
            r#"{"queries": ["ta~name", "department~take"], "threads": 2}"#,
            &[("x-ipe-trace-id", "batchtrace1")],
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let (status, body) = client
        .request("GET", "/v1/debug/requests/batchtrace1", "")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(spans) = get(&v, "spans") else {
        panic!("spans is not an array: {body}");
    };
    let names = span_names(&spans);
    let items = names.iter().filter(|n| *n == "batch.item").count();
    assert_eq!(items, 2, "one batch.item span per miss: {names:?}");
    assert_parent_linkage(&spans, &body);
    // Each batch.item parents at the fan-out span, which parents at http.
    let fanout = spans
        .iter()
        .find(|s| matches!(get(s, "name"), Value::Str(n) if n == "batch"))
        .expect("fan-out span");
    let fanout_id = as_u64(&get(fanout, "id"));
    for s in spans
        .iter()
        .filter(|s| matches!(get(s, "name"), Value::Str(n) if n == "batch.item"))
    {
        assert_eq!(as_u64(&get(s, "parent")), fanout_id, "{body}");
    }
    server.shutdown();
}

/// Ring wraparound: errored and slowest requests survive while ordinary
/// sampled traffic is evicted from the tiny recent ring.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "tracing is compiled out")]
fn flight_recorder_retains_errors_and_slowest_across_wraparound() {
    let (server, mut client) = start_traced_server(|c| {
        c.flight_capacity = 4;
        c.flight_keep_slowest = 2;
        c.flight_keep_errors = 2;
    });
    // The slowest request this server will see: a cold exhaustive search.
    let resp = client
        .request_with(
            "POST",
            "/v1/complete",
            r#"{"query": "ta~name"}"#,
            &[("x-ipe-trace-id", "slowpoke")],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    // An errored request (unknown schema -> 404).
    let resp = client
        .request_with(
            "POST",
            "/v1/complete",
            r#"{"schema": "ghost", "query": "a~b"}"#,
            &[("x-ipe-trace-id", "err1")],
        )
        .unwrap();
    assert_eq!(resp.status, 404);
    // Wrap the recent ring many times over with cheap cached requests.
    for i in 0..40 {
        let resp = client
            .request_with(
                "POST",
                "/v1/complete",
                r#"{"query": "ta~name"}"#,
                &[("x-ipe-trace-id", &format!("wrap{i}"))],
            )
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    // Both survive lookup after wraparound.
    let (status, body) = client
        .request("GET", "/v1/debug/requests/err1", "")
        .unwrap();
    assert_eq!(status, 200, "errored trace evicted: {body}");
    let (status, body) = client
        .request("GET", "/v1/debug/requests/slowpoke", "")
        .unwrap();
    assert_eq!(status, 200, "slowest trace evicted: {body}");
    // The dump lists them in their always-keep pools.
    let (status, dump) = client.request("GET", "/v1/debug/requests", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&dump).unwrap();
    let Value::Seq(errors) = get(&v, "errors") else {
        panic!("errors is not an array: {dump}");
    };
    assert!(
        errors
            .iter()
            .any(|r| matches!(get(r, "trace_id"), Value::Str(id) if id == "err1")),
        "{dump}"
    );
    let Value::Seq(slowest) = get(&v, "slowest") else {
        panic!("slowest is not an array: {dump}");
    };
    assert!(
        slowest
            .iter()
            .any(|r| matches!(get(r, "trace_id"), Value::Str(id) if id == "slowpoke")),
        "{dump}"
    );
    // Ordinary traffic was evicted: the recent ring holds at most one
    // trace per shard (8 shards here) and the slowest reservoir two, so
    // the vast majority of the 40 wrap requests must be gone. (Any one
    // specific id may survive in the slowest pool under scheduler noise.)
    let mut evicted = 0;
    for i in 0..40 {
        let (status, _) = client
            .request("GET", &format!("/v1/debug/requests/wrap{i}"), "")
            .unwrap();
        evicted += u64::from(status == 404);
    }
    assert!(evicted >= 30, "only {evicted}/40 wrap traces were evicted");
    server.shutdown();
}

/// Head sampling: with `trace_sample_n` = 2 only every other request
/// records spans, and unsampled requests leave no retrievable trace.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "tracing is compiled out")]
fn head_sampling_skips_unsampled_requests() {
    let (server, mut client) = start_traced_server(|c| {
        c.trace_sample_n = 2;
        c.slow_ms = 0;
    });
    // Issue all requests first: the debug lookups below consume sampling
    // ticks too, and interleaving them would lock every probe request
    // onto the same tick parity.
    for i in 0..6 {
        let id = format!("sample{i}");
        let resp = client
            .request_with("GET", "/healthz", "", &[("x-ipe-trace-id", &id)])
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let mut retained = 0;
    for i in 0..6 {
        let (status, _) = client
            .request("GET", &format!("/v1/debug/requests/sample{i}"), "")
            .unwrap();
        retained += u64::from(status == 200);
    }
    // This server is private to the test, so exactly every other request
    // passed the 1-in-2 head sample.
    assert_eq!(retained, 3, "1-in-2 sampling retained {retained}/6");
    server.shutdown();
}

/// The Prometheus exposition passes the in-repo lint, carries the cache
/// byte gauge, histogram families for the route timers, and recorded
/// quantiles; the JSON default is unchanged and reports the same bytes.
#[test]
fn prometheus_exposition_lints_and_reports_cache_bytes() {
    let (server, mut client) = start_traced_server(|_| {});
    // A cold completion gives the cache a non-zero byte footprint.
    let (status, _) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 200);

    let resp = client
        .request_with("GET", "/metrics?format=prometheus", "", &[])
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "prometheus exposition must be text/plain, got {:?}",
        resp.header("content-type")
    );
    if let Err(problems) = ipe_obs::prom::lint(&resp.body) {
        panic!("prometheus lint failed: {problems:?}\n{}", resp.body);
    }
    assert!(
        resp.body.contains("ipe_service_cache_bytes"),
        "{}",
        resp.body
    );
    // The gauge is non-zero after the cold insert.
    let bytes_line = resp
        .body
        .lines()
        .find(|l| l.starts_with("ipe_service_cache_bytes "))
        .expect("cache bytes sample line");
    let value: f64 = bytes_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric sample");
    assert!(value > 0.0, "{bytes_line}");

    // JSON stays the default and reports the same gauge.
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).expect("metrics JSON");
    let cache = get(&get(&v, "service"), "cache");
    assert_eq!(as_u64(&get(&cache, "bytes")), value as u64, "{body}");
    server.shutdown();
}

/// Route timers show up as histogram families with `_bucket`/`_sum`/
/// `_count` and recorded quantile gauges once traffic has flowed.
#[cfg(not(feature = "obs-off"))]
#[test]
fn prometheus_histograms_cover_route_timers() {
    let (server, mut client) = start_traced_server(|_| {});
    for _ in 0..3 {
        client
            .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
            .unwrap();
    }
    let (status, body) = client
        .request("GET", "/metrics?format=prometheus", "")
        .unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("ipe_service_route_complete_ns_bucket"),
        "{body}"
    );
    assert!(body.contains("ipe_service_route_complete_ns_sum"), "{body}");
    assert!(
        body.contains("ipe_service_route_complete_ns_count"),
        "{body}"
    );
    assert!(
        body.contains("ipe_service_route_complete_ns_quantile{quantile=\"0.95\"}"),
        "{body}"
    );
    server.shutdown();
}

/// With `obs-off` the debug routes are cleanly absent (404), while the
/// rest of the service keeps working.
#[cfg(feature = "obs-off")]
#[test]
fn obs_off_debug_routes_404_cleanly() {
    let (server, mut client) = start_traced_server(|_| {});
    let (status, body) = client.request("GET", "/v1/debug/requests", "").unwrap();
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("obs-off"), "{body}");
    let (status, _) = client.request("GET", "/v1/debug/requests/abc", "").unwrap();
    assert_eq!(status, 404);
    // Tracing headers are still echoed (ids are useful in logs even
    // without span recording).
    let resp = client
        .request_with("GET", "/healthz", "", &[("x-ipe-trace-id", "offid1")])
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-ipe-trace-id"), Some("offid1"));
    server.shutdown();
}

/// Pipelined keep-alive: several requests written back-to-back in one
/// burst must each get exactly one response, in order, with no bytes
/// lost between requests (the over-read tail of one request is the head
/// of the next).
#[test]
fn pipelined_keepalive_round_trips_losslessly() {
    use std::io::{Read, Write};
    let (server, _client) = start_server();
    let mut s = std::net::TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let body = r#"{"query": "ta~name"}"#;
    let mut burst = String::new();
    for _ in 0..3 {
        burst.push_str("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        burst.push_str(&format!(
            "POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ));
    }
    burst.push_str("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    s.write_all(burst.as_bytes()).expect("write burst");

    let mut out = String::new();
    s.read_to_string(&mut out).expect("read all responses");
    // Bodies and the next status line share a line, so count substrings.
    assert_eq!(
        out.matches("HTTP/1.1 ").count(),
        7,
        "expected 7 responses:\n{out}"
    );
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        7,
        "non-200 in pipeline:\n{out}"
    );
    // Each complete response carries the Figure-2 answers — framing did
    // not shear a body into the next request.
    assert_eq!(out.matches("ta@>grad@>student@>person.name").count(), 3);
    server.shutdown();
}

/// `%XX` escapes in the request target are decoded before routing:
/// a schema whose name contains a space round-trips through
/// `PUT`/`GET /v1/schemas/my%20schema`, and percent-encoded query
/// parameter values decode (`format=%70rometheus` still selects the
/// Prometheus exposition). Malformed escapes are a `400`.
#[test]
fn percent_escapes_decode_in_routing_and_query_params() {
    let (server, mut client) = start_server();
    let uni = fixtures::university().to_json();
    let (status, body) = client
        .request("PUT", "/v1/schemas/my%20schema", &uni)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .request("GET", "/v1/schemas/my%20schema", "")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "name"), Value::Str("my schema".to_owned()));

    let (status, body) = client
        .request("GET", "/metrics?format=%70rometheus", "")
        .unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE"),
        "decoded format param must select Prometheus text: {body}"
    );

    let addr = server.addr().to_string();
    for bad in [
        "GET /v1/schemas/bad%2 HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /v1/schemas/bad%zz HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /healthz?x=%e2%28%a1 HTTP/1.1\r\nHost: t\r\n\r\n",
    ] {
        let resp = raw_request(&addr, bad);
        assert_eq!(raw_status(&resp), 400, "{bad:?} -> {resp}");
    }
    server.shutdown();
}

/// With one reactor capped at one live connection, a second concurrent
/// connection is turned away with `503` (and the old worker-pool error
/// body), and capacity frees up once the first connection closes.
#[test]
fn backpressure_503_beyond_connection_cap() {
    use std::io::{Read, Write};
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 1,
        queue_depth: 1,
        request_timeout: Duration::from_secs(5),
        ..Default::default()
    })
    .expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    let addr = server.addr().to_string();

    // Occupy the single slot with a live keep-alive connection.
    let mut held = std::net::TcpStream::connect(&addr).expect("connect");
    held.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    held.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut first = [0u8; 512];
    let n = held.read(&mut first).expect("read held response");
    assert!(String::from_utf8_lossy(&first[..n]).contains("200"));

    // The next connection is rejected at accept time.
    let resp = raw_request(&addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(raw_status(&resp), 503, "{resp}");
    assert!(resp.contains("request queue is full"), "{resp}");

    // Releasing the held connection frees the slot.
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let resp = raw_request(&addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        if raw_status(&resp) == 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed: {resp}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// A handler panic — injected while the store, warmup, and builder locks
/// are held — answers that request `500` and leaves the server fully
/// serviceable: the poisoned locks are recovered on next use instead of
/// condemning every later request.
#[test]
fn injected_panic_does_not_take_down_the_server() {
    let (server, mut client) = start_traced_server(|c| c.debug_panic_route = true);
    let (status, body) = client.request("POST", "/v1/debug/panic", "").unwrap();
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // Requests that take the same locks still succeed.
    let (status, body) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(completion_texts(&body).len(), 2);
    let uni = fixtures::university().to_json();
    let (status, body) = client.request("PUT", "/v1/schemas/after", &uni).unwrap();
    assert_eq!(status, 200, "{body}");

    // A second injected panic and another recovery, for good measure.
    let (status, _) = client.request("POST", "/v1/debug/panic", "").unwrap();
    assert_eq!(status, 500);
    let (status, _) = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);

    #[cfg(not(feature = "obs-off"))]
    {
        let (status, body) = client.request("GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        let v = serde_json::parse_value_text(&body).unwrap();
        let counters = get(&v, "counters");
        assert!(
            as_u64(&get(&counters, "service.request.panicked")) >= 2,
            "{body}"
        );
    }
    server.shutdown();
}

/// The panic route is opt-in: without `debug_panic_route` it does not
/// exist.
#[test]
fn panic_route_is_absent_by_default() {
    let (server, mut client) = start_server();
    let (status, _) = client.request("POST", "/v1/debug/panic", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}
