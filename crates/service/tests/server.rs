//! End-to-end tests over a real socket: registry round-trips, Figure-2
//! answers through the HTTP API, cache hits, hot-swap invalidation,
//! metrics, error paths, and graceful shutdown.

use ipe_schema::fixtures;
use ipe_service::{Client, Server, ServiceConfig};
use serde::Value;
use std::time::Duration;

/// A small test server on an ephemeral port, with the university fixture
/// preloaded as `default`.
fn start_server() -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 4,
        batch_threads: 2,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

fn completion_texts(body: &str) -> Vec<String> {
    let v = serde_json::parse_value_text(body).expect("valid JSON");
    let Value::Seq(items) = get(&v, "completions") else {
        panic!("completions is not an array: {body}");
    };
    items
        .iter()
        .map(|c| match get(c, "text") {
            Value::Str(s) => s,
            other => panic!("text is not a string: {other:?}"),
        })
        .collect()
}

#[test]
fn healthz_and_unknown_route() {
    let (server, mut client) = start_server();
    let (status, body) = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ok"));
    let (status, _) = client.request("GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// The flagship `ta~name` query through the HTTP API: the two Section
/// 2.2.2 completions come back, and the identical second request is
/// served from the cache with identical results.
#[test]
fn complete_ta_name_and_cache_hit() {
    let (server, mut client) = start_server();
    let req = r#"{"query": "ta ~ name"}"#;
    let (status, first) = client.request("POST", "/v1/complete", req).unwrap();
    assert_eq!(status, 200, "{first}");
    let texts = completion_texts(&first);
    assert_eq!(texts.len(), 2, "{texts:?}");
    assert!(texts.contains(&"ta@>grad@>student@>person.name".to_owned()));
    assert!(texts.contains(&"ta@>instructor@>teacher@>employee@>person.name".to_owned()));
    let v = serde_json::parse_value_text(&first).unwrap();
    assert_eq!(get(&v, "cached"), Value::Bool(false));
    // The whitespace variant normalizes onto the same cache key.
    assert_eq!(get(&v, "query"), Value::Str("ta~name".to_owned()));

    let (status, second) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    assert_eq!(status, 200);
    let v2 = serde_json::parse_value_text(&second).unwrap();
    assert_eq!(get(&v2, "cached"), Value::Bool(true));
    assert_eq!(completion_texts(&second), texts);
    // Cached responses repeat the original run's search counters.
    assert_eq!(
        as_u64(&get(&get(&v, "stats"), "calls")),
        as_u64(&get(&get(&v2, "stats"), "calls"))
    );
    server.shutdown();
}

/// Distinct configs must not share cache entries.
#[test]
fn config_changes_miss_the_cache() {
    let (server, mut client) = start_server();
    let (_, first) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let (_, second) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name", "e": 2}"#)
        .unwrap();
    let v = serde_json::parse_value_text(&second).unwrap();
    assert_eq!(
        get(&v, "cached"),
        Value::Bool(false),
        "different E: {first}"
    );
    server.shutdown();
}

/// `PUT /v1/schemas/:name` registers new schemas and hot-swaps existing
/// ones: the generation bumps and previously-cached results are not
/// served for the new version.
#[test]
fn put_schema_hot_swap_invalidates_cache() {
    let (server, mut client) = start_server();
    let uni = fixtures::university().to_json();
    let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 1);

    let req = r#"{"schema": "uni", "query": "ta~name"}"#;
    client.request("POST", "/v1/complete", req).unwrap();
    let (_, warm) = client.request("POST", "/v1/complete", req).unwrap();
    let warm_v = serde_json::parse_value_text(&warm).unwrap();
    assert_eq!(get(&warm_v, "cached"), Value::Bool(true));

    // Hot-swap the same name: generation 2, cache cold again.
    let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(as_u64(&get(&v, "generation")), 2);
    assert!(as_u64(&get(&v, "purged_cache_entries")) >= 1);

    let (_, after) = client.request("POST", "/v1/complete", req).unwrap();
    let after_v = serde_json::parse_value_text(&after).unwrap();
    assert_eq!(get(&after_v, "cached"), Value::Bool(false));
    assert_eq!(as_u64(&get(&after_v, "generation")), 2);

    // The listing reflects both schemas.
    let (status, body) = client.request("GET", "/v1/schemas", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"uni\"") && body.contains("\"default\""),
        "{body}"
    );
    server.shutdown();
}

/// `DELETE /v1/schemas/:name` unregisters the schema, purges its cached
/// completions, and 404s for unknown (or already-deleted) names.
#[test]
fn delete_schema_purges_cache_and_404s_unknown() {
    let (server, mut client) = start_server();
    let uni = fixtures::university().to_json();
    client.request("PUT", "/v1/schemas/doomed", &uni).unwrap();
    // Warm one entry for the doomed schema and one for default.
    let req = r#"{"schema": "doomed", "query": "ta~name"}"#;
    client.request("POST", "/v1/complete", req).unwrap();
    client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();

    let (status, body) = client.request("DELETE", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "name"), Value::Str("doomed".to_owned()));
    assert_eq!(as_u64(&get(&v, "generation")), 1);
    assert_eq!(
        as_u64(&get(&v, "purged_cache_entries")),
        1,
        "only the doomed schema's entry is purged"
    );

    // Completions against the deleted name now 404; the default schema's
    // cache entry survived.
    let (status, _) = client.request("POST", "/v1/complete", req).unwrap();
    assert_eq!(status, 404);
    let (_, warm) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let warm_v = serde_json::parse_value_text(&warm).unwrap();
    assert_eq!(get(&warm_v, "cached"), Value::Bool(true));

    // Deleting again (or a never-registered name) is a 404.
    let (status, _) = client.request("DELETE", "/v1/schemas/doomed", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/v1/schemas/ghost", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// `GET /v1/schemas/:name` returns that schema's summary without forcing
/// a full listing.
#[test]
fn get_schema_by_name() {
    let (server, mut client) = start_server();
    let (status, body) = client.request("GET", "/v1/schemas/default", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    assert_eq!(get(&v, "name"), Value::Str("default".to_owned()));
    assert_eq!(as_u64(&get(&v, "generation")), 1);
    assert!(as_u64(&get(&v, "classes")) > 0);
    let (status, _) = client.request("GET", "/v1/schemas/ghost", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn error_paths_return_structured_errors() {
    let (server, mut client) = start_server();
    // Unknown schema.
    let (status, body) = client
        .request(
            "POST",
            "/v1/complete",
            r#"{"schema": "ghost", "query": "a~b"}"#,
        )
        .unwrap();
    assert_eq!(status, 404, "{body}");
    // Unparseable query.
    let (status, _) = client
        .request("POST", "/v1/complete", r#"{"query": "~~~"}"#)
        .unwrap();
    assert_eq!(status, 400);
    // Unknown root class: engine error, not a server error.
    let (status, _) = client
        .request("POST", "/v1/complete", r#"{"query": "ghost~name"}"#)
        .unwrap();
    assert_eq!(status, 422);
    // Invalid JSON body.
    let (status, _) = client.request("POST", "/v1/complete", "{nope").unwrap();
    assert_eq!(status, 400);
    // Invalid schema upload.
    let (status, _) = client.request("PUT", "/v1/schemas/bad", "{}").unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

/// `/metrics` renders the standard obs report extended with the service
/// section, and its hit/miss counts are consistent with the traffic.
#[test]
fn metrics_reflect_cache_traffic() {
    let (server, mut client) = start_server();
    for _ in 0..3 {
        client
            .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
            .unwrap();
    }
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let v = serde_json::parse_value_text(&body).expect("metrics is valid JSON");
    let service = get(&v, "service");
    let cache = get(&service, "cache");
    // This server is private to the test, so the gauges are exact: one
    // miss (first request), then hits.
    assert_eq!(as_u64(&get(&cache, "misses")), 1);
    assert_eq!(as_u64(&get(&cache, "hits")), 2);
    assert_eq!(as_u64(&get(&cache, "entries")), 1);
    assert!(as_u64(&get(&service, "requests_total")) >= 3);
    // The global obs sections are present (values are process-wide).
    assert!(v.get("counters").is_some());
    assert!(v.get("timers").is_some());
    server.shutdown();
}

/// `POST /v1/shutdown` answers the request, then the server drains and
/// `join` returns.
#[test]
fn shutdown_endpoint_stops_the_server() {
    let (server, mut client) = start_server();
    let addr = server.addr();
    let (status, body) = client.request("POST", "/v1/shutdown", "").unwrap();
    assert_eq!(status, 200, "{body}");
    server.join();
    // The port no longer accepts new work.
    let mut late = Client::new(addr.to_string());
    assert!(late.request("GET", "/healthz", "").is_err());
}

/// `POST /v1/complete/batch`: per-item outcomes in submission order,
/// whitespace-variant queries normalize onto one cache key, parse
/// failures are per-item errors (not a request failure), and the batch
/// shares the single-endpoint cache.
#[test]
fn batch_endpoint_completes_and_caches() {
    let (server, mut client) = start_server();
    let req = r#"{"queries": ["ta ~ name", "department~take", "~~~"], "threads": 2}"#;
    let (status, body) = client.request("POST", "/v1/complete/batch", req).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(items) = get(&v, "items") else {
        panic!("items is not an array: {body}");
    };
    assert_eq!(items.len(), 3);
    assert_eq!(get(&items[0], "status"), Value::Str("ok".to_owned()));
    assert_eq!(get(&items[0], "cached"), Value::Bool(false));
    // Whitespace normalization applies per item.
    assert_eq!(get(&items[0], "query"), Value::Str("ta~name".to_owned()));
    assert_eq!(get(&items[1], "status"), Value::Str("ok".to_owned()));
    assert_eq!(get(&items[2], "status"), Value::Str("error".to_owned()));
    assert!(items[2].get("error").is_some(), "{body}");

    // The batch populated the same cache the single endpoint reads.
    let (_, single) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .unwrap();
    let sv = serde_json::parse_value_text(&single).unwrap();
    assert_eq!(get(&sv, "cached"), Value::Bool(true), "{single}");

    // And a repeat batch is served from the cache.
    let (_, again) = client.request("POST", "/v1/complete/batch", req).unwrap();
    let av = serde_json::parse_value_text(&again).unwrap();
    let Value::Seq(items) = get(&av, "items") else {
        panic!("items is not an array: {again}");
    };
    assert_eq!(get(&items[0], "cached"), Value::Bool(true));
    assert_eq!(get(&items[1], "cached"), Value::Bool(true));
    server.shutdown();
}

/// Batch validation errors are whole-request errors: unknown schema is a
/// 404, an over-cap batch is a 400.
#[test]
fn batch_endpoint_rejects_bad_requests() {
    let (server, mut client) = start_server();
    let (status, _) = client
        .request(
            "POST",
            "/v1/complete/batch",
            r#"{"schema": "ghost", "queries": ["a~b"]}"#,
        )
        .unwrap();
    assert_eq!(status, 404);
    let many: Vec<String> = (0..257).map(|_| "\"ta~name\"".to_owned()).collect();
    let body = format!("{{\"queries\": [{}]}}", many.join(","));
    let (status, resp) = client.request("POST", "/v1/complete/batch", &body).unwrap();
    assert_eq!(status, 400, "{resp}");
    server.shutdown();
}

/// A combinatorially heavy item trips its per-item deadline and reports
/// `deadline_exceeded` in its own slot, while the cheap item in the same
/// batch completes — the acceptance scenario for deadline isolation.
#[test]
fn batch_deadline_is_per_item() {
    use ipe_schema::{Primitive, SchemaBuilder};
    let (server, mut client) = start_server();
    // A fully-connected 12-class schema whose only `goal` attribute sits
    // on the root class: `c0~e10_11~goal` has no acyclic completion, so
    // the exhaustive multi-tilde search would run for hours without the
    // deadline, and never trips the result cap.
    let mut b = SchemaBuilder::new();
    let classes: Vec<_> = (0..12)
        .map(|i| b.class(&format!("c{i}")).unwrap())
        .collect();
    for (i, &source) in classes.iter().enumerate() {
        for (j, &target) in classes.iter().enumerate() {
            if i != j {
                b.assoc(source, target, &format!("e{i}_{j}")).unwrap();
            }
        }
    }
    b.attr(classes[0], "goal", Primitive::Real).unwrap();
    let dense = b.build().unwrap();
    let (status, body) = client
        .request("PUT", "/v1/schemas/dense", &dense.to_json())
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let req = r#"{"schema": "dense", "queries": ["c0.goal", "c0~e10_11~goal"],
                  "deadline_ms": 150, "threads": 2}"#;
    let started = std::time::Instant::now();
    let (status, body) = client.request("POST", "/v1/complete/batch", req).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let Value::Seq(items) = get(&v, "items") else {
        panic!("items is not an array: {body}");
    };
    assert_eq!(
        get(&items[0], "status"),
        Value::Str("ok".to_owned()),
        "{body}"
    );
    assert_eq!(
        get(&items[1], "status"),
        Value::Str("deadline_exceeded".to_owned()),
        "{body}"
    );
    assert_eq!(as_u64(&get(&v, "deadline_hits")), 1);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "batch stalled: {:?}",
        started.elapsed()
    );
    server.shutdown();
}

/// Sends raw bytes and returns the full response text (the server closes
/// rejected connections, so read-to-end terminates).
fn raw_request(addr: &str, payload: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload.as_bytes()).expect("write");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn raw_status(resp: &str) -> u16 {
    resp.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"))
}

/// A declared body beyond the 32 MiB cap is answered `413` from the
/// headers alone — the server never tries to read the body.
#[test]
fn oversized_declared_body_is_413() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let resp = raw_request(
        &addr,
        "POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 33554433\r\n\r\n",
    );
    assert_eq!(raw_status(&resp), 413, "{resp}");
    server.shutdown();
}

/// Conflicting duplicate `Content-Length` headers (a request-smuggling
/// vector) are a `400`; *identical* duplicates are tolerated.
#[test]
fn duplicate_content_length_handling() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let resp = raw_request(
        &addr,
        "POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}",
    );
    assert_eq!(raw_status(&resp), 400, "{resp}");
    assert!(resp.contains("conflicting"), "{resp}");

    let resp = raw_request(
        &addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(raw_status(&resp), 200, "{resp}");
    server.shutdown();
}

/// Header-field floods are answered `431`: too many header lines, or one
/// absurdly long line.
#[test]
fn header_floods_are_431() {
    let (server, _client) = start_server();
    let addr = server.addr().to_string();
    let mut flood = String::from("GET /healthz HTTP/1.1\r\nHost: t\r\n");
    for i in 0..101 {
        flood.push_str(&format!("X-Flood-{i}: x\r\n"));
    }
    flood.push_str("\r\n");
    let resp = raw_request(&addr, &flood);
    assert_eq!(raw_status(&resp), 431, "{resp}");

    let long_line = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Long: {}\r\n\r\n",
        "a".repeat(9 * 1024)
    );
    let resp = raw_request(&addr, &long_line);
    assert_eq!(raw_status(&resp), 431, "{resp}");

    let long_target = format!("GET /{} HTTP/1.1\r\nHost: t\r\n\r\n", "a".repeat(9 * 1024));
    let resp = raw_request(&addr, &long_target);
    assert_eq!(raw_status(&resp), 431, "{resp}");
    server.shutdown();
}
