//! End-to-end tests of the service's background index builds: completes
//! issued during the build window succeed unindexed, post-build requests
//! report index hits in `/metrics`, and index sidecars are loaded on
//! restart only when they match the schema's exact id and generation —
//! stale or corrupt sidecars trigger a rebuild, never an error and never
//! wrong bounds.

use ipe_schema::fixtures;
use ipe_service::{Client, FsyncPolicy, Server, ServiceConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ipe-service-index-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_with(data_dir: Option<&Path>, build_delay_ms: u64) -> (Server, Client) {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 2,
        queue_depth: 16,
        request_timeout: Duration::from_secs(5),
        cache_capacity: 256,
        cache_shards: 2,
        data_dir: data_dir.map(Path::to_path_buf),
        fsync: FsyncPolicy::Always,
        snapshot_every: 4,
        index_build_delay_ms: build_delay_ms,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn get(v: &Value, key: &str) -> Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .clone()
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::I64(i) => *i as u64,
        Value::U64(u) => *u,
        other => panic!("expected number, got {other:?}"),
    }
}

/// The `service.index` section of `/metrics`.
fn index_metrics(client: &mut Client) -> Value {
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    get(&get(&v, "service"), "index")
}

/// Polls `/metrics` until the index section satisfies `pred`, panicking
/// after ten seconds.
fn wait_for_index(client: &mut Client, what: &str, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = index_metrics(client);
        if pred(&m) {
            return m;
        }
        if Instant::now() > deadline {
            panic!("timed out waiting for {what}; last metrics: {m:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A complete issued during the (artificially widened) build window must
/// succeed — served unindexed — and once the build lands, fresh requests
/// must count as indexed in `/metrics`.
#[test]
fn completes_succeed_during_build_window_then_hit_the_index() {
    let (server, mut client) = server_with(None, 800);
    let uni = fixtures::university().to_json();
    let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
    assert_eq!(status, 200, "{body}");

    // Inside the build window: the complete succeeds without the index.
    let (status, body) = client
        .request(
            "POST",
            "/v1/complete",
            r#"{"schema": "uni", "query": "ta~name"}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "complete during index build failed: {body}");
    let v = serde_json::parse_value_text(&body).unwrap();
    let completions = match get(&v, "completions") {
        Value::Seq(items) => items,
        other => panic!("expected completions array, got {other:?}"),
    };
    assert_eq!(completions.len(), 2, "{body}");
    let m = index_metrics(&mut client);
    assert!(
        as_u64(&get(&m, "completes_unindexed")) >= 1,
        "the in-window complete should have been unindexed: {m:?}"
    );
    assert_eq!(as_u64(&get(&m, "builds_completed")), 0, "{m:?}");

    // After the build: a fresh (uncached) query reports an index hit.
    wait_for_index(&mut client, "background build", |m| {
        as_u64(&get(m, "builds_completed")) >= 1
    });
    let (status, body) = client
        .request(
            "POST",
            "/v1/complete",
            r#"{"schema": "uni", "query": "student~name"}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let m = index_metrics(&mut client);
    assert!(
        as_u64(&get(&m, "completes_indexed")) >= 1,
        "post-build complete should report an index hit: {m:?}"
    );
    server.shutdown();
}

/// A sidecar written on one run is loaded on the next (skipping the
/// rebuild), while a tampered or stale sidecar silently degrades to a
/// fresh background build with identical results.
#[test]
fn sidecar_roundtrip_and_stale_or_corrupt_fallback() {
    let dir = tmp_dir("sidecar");
    let uni = fixtures::university().to_json();

    // Run A: PUT, wait for the build, shutdown (joins the builder so the
    // sidecar write lands before exit).
    let schema_id;
    {
        let (server, mut client) = server_with(Some(&dir), 0);
        let (status, body) = client.request("PUT", "/v1/schemas/uni", &uni).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value_text(&body).unwrap();
        schema_id = as_u64(&get(&v, "id"));
        wait_for_index(&mut client, "initial build", |m| {
            as_u64(&get(m, "builds_completed")) >= 1
        });
        server.shutdown();
    }
    let sidecar = ipe_store::sidecar_path(&dir, schema_id);
    assert!(sidecar.exists(), "build should have persisted a sidecar");

    // Run B: restart loads the sidecar instead of rebuilding, and an
    // uncached complete is indexed from the first request.
    {
        let (server, mut client) = server_with(Some(&dir), 0);
        let m = index_metrics(&mut client);
        assert_eq!(as_u64(&get(&m, "sidecar_loads")), 1, "{m:?}");
        assert_eq!(as_u64(&get(&m, "builds_completed")), 0, "{m:?}");
        let (status, body) = client
            .request(
                "POST",
                "/v1/complete",
                r#"{"schema": "uni", "query": "ta~name"}"#,
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let m = index_metrics(&mut client);
        assert!(as_u64(&get(&m, "completes_indexed")) >= 1, "{m:?}");
        server.shutdown();
    }

    // Run C: a sidecar tagged with a *different generation* (as if left
    // behind by an older schema version) must not be loaded against the
    // current one — rebuild instead.
    ipe_store::write_sidecar(&sidecar, schema_id, 999, b"whatever").unwrap();
    {
        let (server, mut client) = server_with(Some(&dir), 0);
        let m = index_metrics(&mut client);
        assert_eq!(
            as_u64(&get(&m, "sidecar_loads")),
            0,
            "a stale-generation sidecar must never be loaded: {m:?}"
        );
        wait_for_index(&mut client, "rebuild after stale sidecar", |m| {
            as_u64(&get(m, "builds_completed")) >= 1
        });
        let (status, body) = client
            .request(
                "POST",
                "/v1/complete",
                r#"{"schema": "uni", "query": "department~take"}"#,
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        server.shutdown();
    }

    // Run D: flip a byte in the (now freshly rewritten) sidecar; the
    // checksum rejects it and the server rebuilds rather than erroring.
    let mut bytes = std::fs::read(&sidecar).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&sidecar, &bytes).unwrap();
    {
        let (server, mut client) = server_with(Some(&dir), 0);
        let m = index_metrics(&mut client);
        assert_eq!(as_u64(&get(&m, "sidecar_loads")), 0, "{m:?}");
        wait_for_index(&mut client, "rebuild after corrupt sidecar", |m| {
            as_u64(&get(m, "builds_completed")) >= 1
        });
        let (status, _) = client.request("GET", "/v1/schemas/uni", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    // DELETE removes the sidecar with the schema.
    {
        let (server, mut client) = server_with(Some(&dir), 0);
        let (status, _) = client.request("DELETE", "/v1/schemas/uni", "").unwrap();
        assert_eq!(status, 200);
        assert!(!sidecar.exists(), "DELETE should remove the index sidecar");
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}
