//! Concurrency tests for the completion cache: an 8-thread stress run
//! asserting cached results are bit-identical to freshly-computed (and
//! traced) ones, mirroring the traced-vs-plain agreement pattern of the
//! observability tests.

use ipe_core::{Completer, CompletionConfig, SearchOutcome};
use ipe_gen::cupid_like;
use ipe_parser::parse_path_expression;
use ipe_service::{config_fingerprint, CacheKey, CompletionCache};
use std::sync::Arc;

/// Eight workers hammer one sharded cache with an overlapping query mix
/// over the CUPID-calibrated schema. Every cache round-trip must return
/// exactly what a fresh traced search of the same query computes — the
/// cache may never serve a stale, partial, or cross-query result.
#[test]
fn eight_thread_cached_results_match_traced_search() {
    let gen = cupid_like(1994);
    let schema = Arc::new(gen.schema);
    // Small capacity on purpose: forces concurrent evictions and
    // re-computation while threads race on the same keys.
    let cache: Arc<CompletionCache> = Arc::new(CompletionCache::new(8, 4));

    // A query mix with real search work: `root ~ name` over distinct
    // ambiguous names.
    let queries: Vec<String> = {
        let mut names: Vec<String> = schema
            .classes()
            .flat_map(|c| schema.out_rels(c).map(|r| schema.name(r.name).to_owned()))
            .collect();
        names.sort();
        names.dedup();
        let roots: Vec<String> = schema
            .classes()
            .filter(|&c| schema.out_rels(c).count() > 2 && !schema.is_primitive(c))
            .map(|c| schema.class_name(c).to_owned())
            .take(4)
            .collect();
        roots
            .iter()
            .flat_map(|r| names.iter().take(4).map(move |n| format!("{r}~{n}")))
            .collect()
    };
    assert!(queries.len() >= 8, "need a non-trivial query mix");

    let fingerprint = config_fingerprint(&CompletionConfig::default());
    std::thread::scope(|scope| {
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            let schema = Arc::clone(&schema);
            let queries = &queries;
            scope.spawn(move || {
                let engine = Completer::new(&schema);
                for i in 0..48 {
                    let query = &queries[(t * 7 + i) % queries.len()];
                    let ast = parse_path_expression(query).unwrap();
                    let key = CacheKey {
                        schema_id: 1,
                        generation: 1,
                        query: ast.to_string(),
                        fingerprint,
                    };
                    let outcome: Arc<SearchOutcome> = match cache.get(&key) {
                        Some(hit) => hit,
                        None => {
                            let fresh =
                                Arc::new(engine.complete_with_stats(&ast).unwrap_or_else(|e| {
                                    panic!("query {query} must complete: {e}")
                                }));
                            cache.insert(key, Arc::clone(&fresh));
                            fresh
                        }
                    };
                    // Identity against an independent traced run: same
                    // completions, same order, same counters.
                    let traced = engine.complete_traced(&ast, 0).unwrap();
                    assert_eq!(
                        outcome.completions, traced.outcome.completions,
                        "cached completions diverge for {query}"
                    );
                    assert_eq!(
                        outcome.stats, traced.outcome.stats,
                        "cached stats diverge for {query}"
                    );
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        8 * 48,
        "every lookup is a hit or a miss"
    );
    assert!(stats.misses >= 1, "cold start must miss");
    assert!(stats.hits >= 1, "overlapping mix must hit");
    assert!(
        stats.evictions >= 1,
        "tiny capacity under {} distinct keys must evict",
        queries.len()
    );
    assert!(stats.entries as usize <= 8 * 2, "capacity is respected");
}
