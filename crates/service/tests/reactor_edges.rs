//! Partial-I/O edge cases against the reactor front end: drip-fed
//! request heads (slow loris), request lines split across writes,
//! write-side backpressure on large pipelined responses, and
//! read-deadline expiry mid-body.

use ipe_schema::fixtures;
use ipe_service::{Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A server with a short request deadline, so deadline tests run fast.
fn start_server(request_timeout: Duration) -> Server {
    let server = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        reactors: 2,
        queue_depth: 64,
        request_timeout,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    server
        .state()
        .registry
        .insert("default", fixtures::university());
    server
}

fn read_all(s: &mut TcpStream) -> String {
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn status_of(resp: &str) -> u16 {
    resp.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"))
}

/// A client that drips its request head one byte at a time never pins a
/// reactor: the per-request deadline is armed at the first byte and not
/// refreshed by later partial reads, so the connection is answered `408`
/// and closed in bounded time.
#[test]
fn slow_loris_drip_fed_head_is_408_in_bounded_time() {
    let server = start_server(Duration::from_millis(400));
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let started = Instant::now();
    let head = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    // Drip well past the deadline; the server should cut us off.
    for b in head.iter() {
        if s.write_all(std::slice::from_ref(b)).is_err() {
            break; // already reset — that's a pass too, as long as it's bounded
        }
        std::thread::sleep(Duration::from_millis(60));
        if started.elapsed() > Duration::from_secs(5) {
            break;
        }
    }
    let resp = read_all(&mut s);
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "slow loris held the connection for {:?}",
        started.elapsed()
    );
    // Either we caught the 408 before the close, or the connection was
    // torn down mid-drip (reset); both bound the attack.
    if !resp.is_empty() {
        assert_eq!(status_of(&resp), 408, "{resp}");
    }
    server.shutdown();
}

/// A request line split across several small writes (with real delays
/// between them) still parses: framing is incremental off readiness
/// events, not one blocking read.
#[test]
fn split_request_line_across_writes_still_parses() {
    let server = start_server(Duration::from_secs(5));
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for chunk in [
        "GE",
        "T /hea",
        "lthz HT",
        "TP/1.1\r\n",
        "Host: t\r\nConnec",
        "tion: close\r\n",
        "\r\n",
    ] {
        s.write_all(chunk.as_bytes()).expect("write chunk");
        std::thread::sleep(Duration::from_millis(30));
    }
    let resp = read_all(&mut s);
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("ok"), "{resp}");
    server.shutdown();
}

/// A POST whose declared body never finishes arriving trips the
/// read deadline mid-body and is answered `408`.
#[test]
fn read_deadline_expiry_mid_body_is_408() {
    let server = start_server(Duration::from_millis(300));
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /v1/complete HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n{\"query\":")
        .expect("write partial body");
    // Never send the remaining bytes.
    let resp = read_all(&mut s);
    assert_eq!(status_of(&resp), 408, "{resp}");
    server.shutdown();
}

/// A client that pipelines a large batch of requests and then stops
/// reading exerts write backpressure; the reactor parks the connection
/// on writability instead of busy-spinning or dropping bytes, and every
/// response arrives intact once the client drains.
#[test]
fn write_backpressure_on_pipelined_responses_is_lossless() {
    let server = start_server(Duration::from_secs(30));

    // Size the batch so the response volume dwarfs what the kernel can
    // buffer on both sides (sender autotunes up to ~4 MiB): writes must
    // hit WouldBlock while the client sits on its hands. The window is
    // shrunk only enough to keep the final drain quick.
    let mut probe = ipe_service::Client::new(server.addr().to_string());
    let (status, body) = probe.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    let batch = (12 * 1024 * 1024 / body.len().max(1)).clamp(512, 20_000);

    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    ipe_service::epoll::set_rcvbuf(&s, 64 * 1024).expect("shrink rcvbuf");

    let mut burst = String::new();
    for _ in 0..batch - 1 {
        burst.push_str("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    burst.push_str("GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    s.write_all(burst.as_bytes()).expect("write burst");

    // Let the server queue responses into a closed window for a while.
    std::thread::sleep(Duration::from_millis(500));

    let out = read_all(&mut s);
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        batch,
        "lost responses under backpressure: got {} of {batch}",
        out.matches("HTTP/1.1 200").count()
    );

    #[cfg(not(feature = "obs-off"))]
    {
        use serde::Value;
        let mut client = ipe_service::Client::new(server.addr().to_string());
        let (status, body) = client.request("GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        let v = serde_json::parse_value_text(&body).unwrap();
        let backpressured = v
            .get("counters")
            .and_then(|c| c.get("service.conn.write_backpressure"))
            .map(|n| match n {
                Value::I64(i) => *i as u64,
                Value::U64(u) => *u,
                _ => 0,
            })
            .unwrap_or(0);
        assert!(
            backpressured >= 1,
            "expected at least one WouldBlock on write: {body}"
        );
    }
    server.shutdown();
}
