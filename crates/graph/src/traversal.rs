//! Depth-first and breadth-first traversals.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Iterative depth-first preorder iterator over the nodes reachable from a
/// set of roots.
///
/// Nodes are yielded at most once, in preorder. Neighbor order follows
/// out-edge insertion order.
pub struct Dfs {
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl Dfs {
    /// Starts a DFS from a single root.
    pub fn new<N, E>(graph: &DiGraph<N, E>, root: NodeId) -> Self {
        let mut visited = vec![false; graph.node_count()];
        visited[root.index()] = true;
        Dfs {
            stack: vec![root],
            visited,
        }
    }

    /// Advances the traversal, returning the next node in preorder.
    pub fn next<N, E>(&mut self, graph: &DiGraph<N, E>) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push successors in reverse so the first out-edge is explored first.
        let succ: Vec<NodeId> = graph.successors(node).collect();
        for &s in succ.iter().rev() {
            if !self.visited[s.index()] {
                self.visited[s.index()] = true;
                self.stack.push(s);
            }
        }
        Some(node)
    }

    /// Drains the traversal into a vector.
    pub fn collect_all<N, E>(mut self, graph: &DiGraph<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(n) = self.next(graph) {
            out.push(n);
        }
        out
    }
}

/// Breadth-first iterator over the nodes reachable from a root.
pub struct Bfs {
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl Bfs {
    /// Starts a BFS from a single root.
    pub fn new<N, E>(graph: &DiGraph<N, E>, root: NodeId) -> Self {
        let mut visited = vec![false; graph.node_count()];
        visited[root.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        Bfs { queue, visited }
    }

    /// Advances the traversal, returning the next node in BFS order.
    pub fn next<N, E>(&mut self, graph: &DiGraph<N, E>) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        for s in graph.successors(node) {
            if !self.visited[s.index()] {
                self.visited[s.index()] = true;
                self.queue.push_back(s);
            }
        }
        Some(node)
    }

    /// Drains the traversal into a vector.
    pub fn collect_all<N, E>(mut self, graph: &DiGraph<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(n) = self.next(graph) {
            out.push(n);
        }
        out
    }
}

/// Boolean reachability table from `root` (including `root` itself).
pub fn reachable_from<N, E>(graph: &DiGraph<N, E>, root: NodeId) -> Vec<bool> {
    let mut dfs = Dfs::new(graph, root);
    while dfs.next(graph).is_some() {}
    dfs.visited
}

/// An event emitted by [`depth_first_events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DfsEvent {
    /// A node is first discovered.
    Discover(NodeId),
    /// An edge to an undiscovered node is traversed.
    TreeEdge(EdgeId),
    /// An edge to a node currently on the DFS stack (a cycle witness).
    BackEdge(EdgeId),
    /// An edge to an already-finished node.
    CrossOrForwardEdge(EdgeId),
    /// All descendants of the node have been processed.
    Finish(NodeId),
}

/// Runs a full recursive DFS from `root`, invoking `visit` for every event.
///
/// Implemented iteratively with an explicit stack so that deep schemas (long
/// `Isa` chains) cannot overflow the call stack.
pub fn depth_first_events<N, E>(
    graph: &DiGraph<N, E>,
    root: NodeId,
    mut visit: impl FnMut(DfsEvent),
) {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; graph.node_count()];
    // Stack frames: (node, index into its out-edge list).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    color[root.index()] = Color::Gray;
    visit(DfsEvent::Discover(root));
    stack.push((root, 0));
    while let Some(&mut (node, ref mut next_edge)) = stack.last_mut() {
        let out = graph.out_edge_ids(node);
        if *next_edge < out.len() {
            let eid = out[*next_edge];
            *next_edge += 1;
            let target = graph.edge(eid).target;
            match color[target.index()] {
                Color::White => {
                    visit(DfsEvent::TreeEdge(eid));
                    color[target.index()] = Color::Gray;
                    visit(DfsEvent::Discover(target));
                    stack.push((target, 0));
                }
                Color::Gray => visit(DfsEvent::BackEdge(eid)),
                Color::Black => visit(DfsEvent::CrossOrForwardEdge(eid)),
            }
        } else {
            stack.pop();
            color[node.index()] = Color::Black;
            visit(DfsEvent::Finish(node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> d, a -> c -> d, d -> a (cycle back to root)
    fn cyclic() -> (DiGraph<(), ()>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        g.add_edge(d, a, ());
        (g, [a, b, c, d])
    }

    #[test]
    fn dfs_preorder_follows_insertion_order() {
        let (g, [a, b, c, d]) = cyclic();
        let order = Dfs::new(&g, a).collect_all(&g);
        assert_eq!(order, vec![a, b, d, c]);
        let _ = (c, d);
    }

    #[test]
    fn bfs_order_is_level_based() {
        let (g, [a, b, c, d]) = cyclic();
        let order = Bfs::new(&g, a).collect_all(&g);
        assert_eq!(order, vec![a, b, c, d]);
    }

    #[test]
    fn reachability_excludes_disconnected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let island = g.add_node(());
        g.add_edge(a, b, ());
        let reach = reachable_from(&g, a);
        assert!(reach[a.index()]);
        assert!(reach[b.index()]);
        assert!(!reach[island.index()]);
    }

    #[test]
    fn dfs_events_classify_back_edges() {
        let (g, [a, ..]) = cyclic();
        let mut backs = 0;
        let mut discovers = 0;
        let mut finishes = 0;
        depth_first_events(&g, a, |ev| match ev {
            DfsEvent::BackEdge(_) => backs += 1,
            DfsEvent::Discover(_) => discovers += 1,
            DfsEvent::Finish(_) => finishes += 1,
            _ => {}
        });
        assert_eq!(backs, 1, "d -> a closes the single cycle");
        assert_eq!(discovers, 4);
        assert_eq!(finishes, 4);
    }

    #[test]
    fn dfs_events_discover_finish_nest() {
        let (g, [a, ..]) = cyclic();
        let mut depth = 0i32;
        let mut max_depth = 0;
        depth_first_events(&g, a, |ev| match ev {
            DfsEvent::Discover(_) => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            DfsEvent::Finish(_) => depth -= 1,
            _ => {}
        });
        assert_eq!(depth, 0);
        assert_eq!(max_depth, 3, "a > b > d nesting");
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n = 200_000;
        let first = g.add_node(());
        let mut prev = first;
        for _ in 1..n {
            let next = g.add_node(());
            g.add_edge(prev, next, ());
            prev = next;
        }
        let mut count = 0;
        depth_first_events(&g, first, |ev| {
            if matches!(ev, DfsEvent::Discover(_)) {
                count += 1;
            }
        });
        assert_eq!(count, n);
    }
}
