//! The core directed multigraph type.

use std::fmt;

/// Dense identifier of a node in a [`DiGraph`].
///
/// Node ids are assigned sequentially by [`DiGraph::add_node`] and are valid
/// for the lifetime of the graph (nodes are never removed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

/// Dense identifier of an edge in a [`DiGraph`].
///
/// Edge ids are assigned sequentially by [`DiGraph::add_edge`] and are valid
/// for the lifetime of the graph (edges are never removed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize`, for indexing per-edge side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed edge together with its weight (label).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge<E> {
    /// Node the edge leaves from.
    pub source: NodeId,
    /// Node the edge points to.
    pub target: NodeId,
    /// User payload. In schema graphs this is the relationship descriptor.
    pub weight: E,
}

/// An append-only directed multigraph with node weights `N` and edge
/// weights `E`.
///
/// Parallel edges and self-loops are allowed: an OO schema routinely has two
/// distinct relationships between the same pair of classes (e.g. a
/// department's `student` association and its `professor` part-of edge may
/// both point at `person` subclasses), and `person.friend -> person` is a
/// legal self-loop.
///
/// # Example
///
/// ```
/// use ipe_graph::DiGraph;
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let e = g.add_edge(a, b, 7);
/// assert_eq!(g.edge(e).weight, 7);
/// assert_eq!(g.out_degree(a), 1);
/// assert_eq!(g.in_degree(b), 1);
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    /// Outgoing edge ids per node, in insertion order.
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, in insertion order.
    inn: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            inn: Vec::new(),
        }
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the graph already holds `u32::MAX` nodes.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count overflow"));
        self.nodes.push(weight);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Adds a directed edge from `source` to `target` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph, or if the
    /// graph already holds `u32::MAX` edges.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            source.index() < self.nodes.len(),
            "source node out of range"
        );
        assert!(
            target.index() < self.nodes.len(),
            "target node out of range"
        );
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count overflow"));
        self.edges.push(Edge {
            source,
            target,
            weight,
        });
        self.out[source.index()].push(id);
        self.inn[target.index()].push(id);
        id
    }

    /// Immutable access to a node weight.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node weight.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Immutable access to an edge.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge<E> {
        &self.edges[id.index()]
    }

    /// Mutable access to an edge weight. Endpoints are immutable by design.
    #[inline]
    pub fn edge_weight_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, weight)` for all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over all edge ids in ascending order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over `(id, edge)` for all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, &Edge<E>)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Out-edge ids of `node` in insertion order.
    #[inline]
    pub fn out_edge_ids(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// In-edge ids of `node` in insertion order.
    #[inline]
    pub fn in_edge_ids(&self, node: NodeId) -> &[EdgeId] {
        &self.inn[node.index()]
    }

    /// Iterates over `(id, edge)` for the out-edges of `node`.
    pub fn out_edges(
        &self,
        node: NodeId,
    ) -> impl ExactSizeIterator<Item = (EdgeId, &Edge<E>)> + '_ {
        self.out[node.index()]
            .iter()
            .map(move |&id| (id, self.edge(id)))
    }

    /// Iterates over `(id, edge)` for the in-edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl ExactSizeIterator<Item = (EdgeId, &Edge<E>)> + '_ {
        self.inn[node.index()]
            .iter()
            .map(move |&id| (id, self.edge(id)))
    }

    /// Successor node ids of `node` (with multiplicity, in insertion order).
    pub fn successors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|(_, e)| e.target)
    }

    /// Predecessor node ids of `node` (with multiplicity, in insertion order).
    pub fn predecessors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|(_, e)| e.source)
    }

    /// Number of out-edges of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// Number of in-edges of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inn[node.index()].len()
    }

    /// Whether at least one edge `source -> target` exists.
    pub fn contains_edge(&self, source: NodeId, target: NodeId) -> bool {
        self.out[source.index()]
            .iter()
            .any(|&id| self.edge(id).target == target)
    }

    /// First edge `source -> target` matching `pred` on the weight, if any.
    pub fn find_edge(
        &self,
        source: NodeId,
        target: NodeId,
        mut pred: impl FnMut(&E) -> bool,
    ) -> Option<EdgeId> {
        self.out[source.index()]
            .iter()
            .copied()
            .find(|&id| self.edge(id).target == target && pred(&self.edge(id).weight))
    }

    /// Maps node and edge weights into a new graph with identical topology.
    ///
    /// Node and edge ids are preserved, so side tables indexed by id remain
    /// valid across the mapping.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &Edge<E>) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| node_map(NodeId(i as u32), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| Edge {
                    source: e.source,
                    target: e.target,
                    weight: edge_map(EdgeId(i as u32), e),
                })
                .collect(),
            out: self.out.clone(),
            inn: self.inn.clone(),
        }
    }

    /// Returns the reversed graph: same nodes, every edge flipped.
    ///
    /// Edge ids are preserved (edge `i` of the result is the reverse of edge
    /// `i` of `self`).
    pub fn reversed(&self) -> DiGraph<N, E>
    where
        N: Clone,
        E: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for e in &self.edges {
            g.add_edge(e.target, e.source, e.weight.clone());
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, &'static str>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, "ab");
        g.add_edge(a, c, "ac");
        g.add_edge(b, d, "bd");
        g.add_edge(c, d, "cd");
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(b), 1);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        g.add_edge(a, a, 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(b), 2);
        assert_eq!(g.in_degree(a), 1);
        let weights: Vec<u32> = g.out_edges(a).map(|(_, e)| e.weight).collect();
        assert_eq!(weights, vec![1, 2, 3]);
    }

    #[test]
    fn find_edge_respects_predicate() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        assert_eq!(g.find_edge(a, b, |w| *w == 2), Some(e2));
        assert_eq!(g.find_edge(a, b, |w| *w == 1), Some(e1));
        assert_eq!(g.find_edge(a, b, |w| *w == 9), None);
        assert_eq!(g.find_edge(b, a, |_| true), None);
    }

    #[test]
    fn contains_edge_direction_sensitive() {
        let (g, [a, b, _, _]) = diamond();
        assert!(g.contains_edge(a, b));
        assert!(!g.contains_edge(b, a));
    }

    #[test]
    fn map_preserves_ids() {
        let (g, [a, _, _, d]) = diamond();
        let mapped = g.map(|id, n| format!("{}#{}", n, id.0), |_, e| e.weight.len());
        assert_eq!(mapped.node(a), "a#0");
        assert_eq!(mapped.node(d), "d#3");
        assert_eq!(mapped.edge_count(), 4);
        assert!(mapped.edges().all(|(_, e)| e.weight == 2));
        // adjacency preserved
        assert_eq!(mapped.out_degree(a), 2);
    }

    #[test]
    fn reversed_flips_edges() {
        let (g, [a, b, _, d]) = diamond();
        let r = g.reversed();
        assert!(r.contains_edge(b, a));
        assert!(!r.contains_edge(a, b));
        assert_eq!(r.out_degree(d), 2);
        assert_eq!(r.in_degree(d), 0);
    }

    #[test]
    fn successors_in_insertion_order() {
        let (g, [a, b, c, _]) = diamond();
        let succ: Vec<NodeId> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_endpoints() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn node_mut_and_edge_weight_mut() {
        let mut g: DiGraph<u32, u32> = DiGraph::new();
        let a = g.add_node(0);
        let e = g.add_edge(a, a, 10);
        *g.node_mut(a) += 1;
        *g.edge_weight_mut(e) += 1;
        assert_eq!(*g.node(a), 1);
        assert_eq!(g.edge(e).weight, 11);
    }
}
