//! Strongly connected components (Tarjan) and graph condensation.

use crate::digraph::{DiGraph, NodeId};

/// Computes the strongly connected components of `graph` with Tarjan's
/// algorithm, implemented iteratively.
///
/// Components are returned in reverse topological order of the condensation
/// (a component appears before any component it has an edge *from*), which is
/// the natural output order of Tarjan's algorithm.
pub fn tarjan_scc<N, E>(graph: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;

    struct Frame {
        node: NodeId,
        edge_idx: usize,
    }

    let n = graph.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    let mut call_stack: Vec<Frame> = Vec::new();
    for root in graph.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;
        call_stack.push(Frame {
            node: root,
            edge_idx: 0,
        });

        while let Some(frame) = call_stack.last_mut() {
            let v = frame.node;
            let out = graph.out_edge_ids(v);
            if frame.edge_idx < out.len() {
                let w = graph.edge(out[frame.edge_idx]).target;
                frame.edge_idx += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call_stack.push(Frame {
                        node: w,
                        edge_idx: 0,
                    });
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    let p = parent.node.index();
                    lowlink[p] = lowlink[p].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Builds the condensation of `graph`: one node per SCC (weighted with the
/// member list), and an edge between two components for every original edge
/// crossing them (parallel condensation edges are collapsed).
pub fn condensation<N, E>(graph: &DiGraph<N, E>) -> DiGraph<Vec<NodeId>, ()> {
    let sccs = tarjan_scc(graph);
    let mut component_of = vec![0usize; graph.node_count()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            component_of[n.index()] = ci;
        }
    }
    let mut out: DiGraph<Vec<NodeId>, ()> = DiGraph::with_capacity(sccs.len(), 0);
    for comp in &sccs {
        out.add_node(comp.clone());
    }
    for (_, e) in graph.edges() {
        let cs = component_of[e.source.index()];
        let ct = component_of[e.target.index()];
        if cs != ct {
            let (csn, ctn) = (NodeId(cs as u32), NodeId(ct as u32));
            if !out.contains_edge(csn, ctn) {
                out.add_edge(csn, ctn, ());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::reachable_from;

    fn sorted(mut v: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
        for c in &mut v {
            c.sort();
        }
        v.sort();
        v
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // (a <-> b) -> (c <-> d), e isolated
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        g.add_edge(d, c, ());
        let sccs = sorted(tarjan_scc(&g));
        assert_eq!(sccs, vec![vec![a, b], vec![c, d], vec![e]]);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 5);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs, vec![vec![a]]);
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_reachability() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        let cond = condensation(&g);
        assert_eq!(cond.node_count(), 2);
        assert_eq!(cond.edge_count(), 1);
        // The component containing {a,b} must reach the component {c}.
        let ab = cond
            .nodes()
            .find(|(_, members)| members.len() == 2)
            .map(|(id, _)| id)
            .unwrap();
        let reach = reachable_from(&cond, ab);
        assert!(reach.iter().all(|&r| r));
    }

    /// Reference check on random graphs: u and v share an SCC iff they reach
    /// each other.
    #[test]
    fn matches_mutual_reachability_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..25 {
            let n = rng.random_range(2..12usize);
            let m = rng.random_range(0..30usize);
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for _ in 0..m {
                let s = nodes[rng.random_range(0..n)];
                let t = nodes[rng.random_range(0..n)];
                g.add_edge(s, t, ());
            }
            let sccs = tarjan_scc(&g);
            let mut comp = vec![usize::MAX; n];
            for (ci, c) in sccs.iter().enumerate() {
                for nid in c {
                    comp[nid.index()] = ci;
                }
            }
            let reach: Vec<Vec<bool>> = nodes.iter().map(|&u| reachable_from(&g, u)).collect();
            for u in 0..n {
                for v in 0..n {
                    let mutual = reach[u][v] && reach[v][u];
                    assert_eq!(comp[u] == comp[v], mutual, "u={u} v={v} comp={comp:?}");
                }
            }
        }
    }
}
