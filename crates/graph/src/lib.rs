//! Directed labelled multigraph substrate for the `ipe` workspace.
//!
//! The schema graphs of *Incomplete Path Expressions and their Disambiguation*
//! (Ioannidis & Lashkari, SIGMOD 1994) are directed multigraphs: classes are
//! nodes and each relationship is a labelled edge, with parallel edges and
//! self-loops both legal. This crate provides that substrate, built from
//! scratch with the access patterns of the completion algorithm in mind:
//!
//! * index-based node/edge identifiers ([`NodeId`], [`EdgeId`]) so per-node
//!   search state lives in flat vectors rather than hash maps;
//! * cheap iteration over the out-edges of a node in insertion order (the
//!   paper's `children[v]`, which the engine re-sorts by label quality);
//! * classic graph algorithms needed by the schema layer and the test suite:
//!   DFS/BFS traversal, Tarjan SCC, topological sort over a filtered edge
//!   subset (used for `Isa`-hierarchy validation), and bounded simple-path
//!   enumeration (used by the exhaustive completion oracle).
//!
//! The graph is append-only: nodes and edges are never removed. Schemas are
//! built once and queried many times, so stable dense indices are worth far
//! more than removal support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod paths;
mod scc;
mod topo;
mod traversal;

pub use digraph::{DiGraph, Edge, EdgeId, NodeId};
pub use paths::{simple_paths, simple_paths_filtered, SimplePath};
pub use scc::{condensation, tarjan_scc};
pub use topo::{topo_sort, topo_sort_filtered, CycleError};
pub use traversal::{depth_first_events, reachable_from, Bfs, Dfs, DfsEvent};
