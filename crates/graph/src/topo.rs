//! Topological sorting, including sorting over a filtered edge subset.
//!
//! Schema validation needs to check that the `Isa` relationships alone form a
//! DAG while the full schema graph is heavily cyclic (every relationship has
//! an inverse). [`topo_sort_filtered`] sorts considering only the edges a
//! predicate accepts.

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Error returned when a (sub)graph contains a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to participate in a cycle of the considered subgraph.
    pub node: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle through {:?}", self.node)
    }
}

impl std::error::Error for CycleError {}

/// Topologically sorts the whole graph. See [`topo_sort_filtered`].
pub fn topo_sort<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    topo_sort_filtered(graph, |_, _| true)
}

/// Topologically sorts the subgraph consisting of all nodes and only the
/// edges accepted by `edge_filter` (Kahn's algorithm).
///
/// Returns the nodes in an order where every accepted edge points from an
/// earlier to a later node, or a [`CycleError`] naming a node on a cycle.
pub fn topo_sort_filtered<N, E>(
    graph: &DiGraph<N, E>,
    mut edge_filter: impl FnMut(EdgeId, &crate::Edge<E>) -> bool,
) -> Result<Vec<NodeId>, CycleError> {
    let n = graph.node_count();
    let mut in_deg = vec![0usize; n];
    let mut accepted = vec![false; graph.edge_count()];
    for (eid, e) in graph.edges() {
        if edge_filter(eid, e) {
            accepted[eid.index()] = true;
            in_deg[e.target.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = graph
        .node_ids()
        .filter(|id| in_deg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &eid in graph.out_edge_ids(v) {
            if accepted[eid.index()] {
                let t = graph.edge(eid).target;
                in_deg[t.index()] -= 1;
                if in_deg[t.index()] == 0 {
                    queue.push(t);
                }
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let node = graph
            .node_ids()
            .find(|id| in_deg[id.index()] > 0)
            .expect("unsorted node must remain");
        Err(CycleError { node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(a, c, ());
        let order = topo_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn detects_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(topo_sort(&g).is_err());
    }

    #[test]
    fn filtered_sort_ignores_rejected_edges() {
        // Full graph is cyclic (a <-> b) but the subgraph keeping only
        // weight-1 edges is a DAG.
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 2);
        assert!(topo_sort(&g).is_err());
        let order = topo_sort_filtered(&g, |_, e| e.weight == 1).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
    }

    #[test]
    fn empty_graph_sorts_trivially() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(topo_sort(&g).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(topo_sort(&g).unwrap_err().node, a);
    }
}
