//! Bounded enumeration of simple (node-acyclic) paths.
//!
//! The paper ignores cyclic path expressions ("humans do not think
//! circularly"), so the set of candidate completions for an incomplete path
//! expression is exactly the set of *simple* paths with the right endpoints.
//! This module provides the generic enumerator the exhaustive completion
//! oracle is built on, and that the evaluation section's "~500 consistent
//! acyclic path expressions per query" statistic is measured with.

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// A simple path: the ordered list of edges traversed.
///
/// The empty path (source == target, no edges) is represented by an empty
/// edge list together with the source node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimplePath {
    /// Start node of the path.
    pub source: NodeId,
    /// Edges in traversal order. May be empty.
    pub edges: Vec<EdgeId>,
}

impl SimplePath {
    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// End node of the path within `graph`.
    pub fn target<N, E>(&self, graph: &DiGraph<N, E>) -> NodeId {
        self.edges
            .last()
            .map(|&e| graph.edge(e).target)
            .unwrap_or(self.source)
    }

    /// The node sequence source..=target.
    pub fn nodes<N, E>(&self, graph: &DiGraph<N, E>) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.source);
        for &e in &self.edges {
            out.push(graph.edge(e).target);
        }
        out
    }
}

/// Enumerates all simple paths from `source` to `target` with at most
/// `max_len` edges. See [`simple_paths_filtered`] for the general form.
pub fn simple_paths<N, E>(
    graph: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    max_len: usize,
) -> Vec<SimplePath> {
    simple_paths_filtered(
        graph,
        source,
        |n| n == target,
        |_, _| true,
        max_len,
        usize::MAX,
    )
}

/// Enumerates simple paths from `source` to any node accepted by `is_target`,
/// traversing only edges accepted by `edge_filter`, with at most `max_len`
/// edges, stopping after `max_paths` results.
///
/// A path is *simple* when no node repeats; in particular a path that
/// reaches a target node may not continue through it and come back. The
/// zero-length path is reported when `is_target(source)` holds.
///
/// The search is a depth-first backtracking walk, so memory is O(longest
/// path) plus the collected results.
pub fn simple_paths_filtered<N, E>(
    graph: &DiGraph<N, E>,
    source: NodeId,
    mut is_target: impl FnMut(NodeId) -> bool,
    mut edge_filter: impl FnMut(EdgeId, &crate::Edge<E>) -> bool,
    max_len: usize,
    max_paths: usize,
) -> Vec<SimplePath> {
    let mut results = Vec::new();
    if max_paths == 0 {
        return results;
    }
    let mut on_path = vec![false; graph.node_count()];
    on_path[source.index()] = true;
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    // Frame: iterator position into out-edges of the node at that depth.
    let mut frames: Vec<(NodeId, usize)> = vec![(source, 0)];

    if is_target(source) {
        results.push(SimplePath {
            source,
            edges: Vec::new(),
        });
        if results.len() >= max_paths {
            return results;
        }
    }

    while let Some(&mut (node, ref mut idx)) = frames.last_mut() {
        let out = graph.out_edge_ids(node);
        let depth = edge_stack.len();
        let mut advanced = false;
        while *idx < out.len() {
            let eid = out[*idx];
            *idx += 1;
            let edge = graph.edge(eid);
            if !edge_filter(eid, edge) {
                continue;
            }
            let t = edge.target;
            if on_path[t.index()] || depth >= max_len {
                continue;
            }
            // Take the edge.
            edge_stack.push(eid);
            on_path[t.index()] = true;
            if is_target(t) {
                results.push(SimplePath {
                    source,
                    edges: edge_stack.clone(),
                });
                if results.len() >= max_paths {
                    return results;
                }
            }
            frames.push((t, 0));
            advanced = true;
            break;
        }
        if !advanced {
            frames.pop();
            if let Some(e) = edge_stack.pop() {
                on_path[graph.edge(e).target.index()] = false;
            } else {
                on_path[source.index()] = false;
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond with an extra long route: a->b->d, a->c->d, a->d, d->e.
    fn fixture() -> (DiGraph<(), char>, [NodeId; 5]) {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b, 'x');
        g.add_edge(a, c, 'y');
        g.add_edge(b, d, 'z');
        g.add_edge(c, d, 'w');
        g.add_edge(a, d, 'v');
        g.add_edge(d, e, 'u');
        (g, [a, b, c, d, e])
    }

    #[test]
    fn finds_all_routes_in_diamond() {
        let (g, [a, _, _, d, _]) = fixture();
        let paths = simple_paths(&g, a, d, 10);
        assert_eq!(paths.len(), 3);
        let lens: Vec<usize> = {
            let mut l: Vec<usize> = paths.iter().map(|p| p.len()).collect();
            l.sort();
            l
        };
        assert_eq!(lens, vec![1, 2, 2]);
        for p in &paths {
            assert_eq!(p.target(&g), d);
        }
    }

    #[test]
    fn max_len_prunes_long_routes() {
        let (g, [a, _, _, d, _]) = fixture();
        let paths = simple_paths(&g, a, d, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn zero_length_path_when_source_is_target() {
        let (g, [a, ..]) = fixture();
        let paths = simple_paths(&g, a, a, 10);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].is_empty());
        assert_eq!(paths[0].target(&g), a);
    }

    #[test]
    fn cycles_are_not_traversed() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let paths = simple_paths(&g, a, b, 10);
        assert_eq!(paths.len(), 1, "only a->b, never a->b->a->b");
    }

    #[test]
    fn max_paths_truncates() {
        let (g, [a, _, _, d, _]) = fixture();
        let paths = simple_paths_filtered(&g, a, |n| n == d, |_, _| true, 10, 2);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn edge_filter_restricts_routes() {
        let (g, [a, _, _, d, _]) = fixture();
        // Forbid the direct edge 'v': only the two 2-hop routes remain.
        let paths =
            simple_paths_filtered(&g, a, |n| n == d, |_, e| e.weight != 'v', 10, usize::MAX);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn node_sequence_matches_edges() {
        let (g, [a, b, _, d, e]) = fixture();
        let paths = simple_paths(&g, a, e, 10);
        let via_b = paths
            .iter()
            .find(|p| p.nodes(&g).contains(&b))
            .expect("route via b exists");
        assert_eq!(via_b.nodes(&g), vec![a, b, d, e]);
    }

    #[test]
    fn target_predicate_multiple_targets() {
        let (g, [a, b, c, _, _]) = fixture();
        let paths = simple_paths_filtered(&g, a, |n| n == b || n == c, |_, _| true, 10, usize::MAX);
        assert_eq!(paths.len(), 2);
    }

    /// The enumerator agrees with a brute-force recursive reference on small
    /// random graphs.
    #[test]
    fn matches_reference_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        fn reference(
            g: &DiGraph<(), ()>,
            node: NodeId,
            target: NodeId,
            on_path: &mut Vec<bool>,
            acc: &mut usize,
            depth: usize,
            max_len: usize,
        ) {
            if node == target {
                *acc += 1;
                // Simple paths stop at the target: do not extend through it.
                return;
            }
            if depth == max_len {
                return;
            }
            for s in g.successors(node).collect::<Vec<_>>() {
                if !on_path[s.index()] {
                    on_path[s.index()] = true;
                    reference(g, s, target, on_path, acc, depth + 1, max_len);
                    on_path[s.index()] = false;
                }
            }
        }

        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.random_range(2..8usize);
            let m = rng.random_range(0..16usize);
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for _ in 0..m {
                let s = nodes[rng.random_range(0..n)];
                let t = nodes[rng.random_range(0..n)];
                if s != t {
                    g.add_edge(s, t, ());
                }
            }
            let s = nodes[0];
            let t = nodes[n - 1];
            let got = simple_paths(&g, s, t, n).len();
            let mut on_path = vec![false; n];
            on_path[s.index()] = true;
            let mut want = 0;
            reference(&g, s, t, &mut on_path, &mut want, 0, n);
            assert_eq!(got, want);
        }
    }
}
