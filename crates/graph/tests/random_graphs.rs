//! Property tests for the graph substrate over random graphs.

use ipe_graph::{
    condensation, reachable_from, simple_paths, tarjan_scc, topo_sort, topo_sort_filtered, DiGraph,
    NodeId,
};
use proptest::prelude::*;

/// Strategy: a random directed graph as (node count, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..25);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> DiGraph<(), ()> {
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for &(s, t) in edges {
        g.add_edge(ids[s], ids[t], ());
    }
    g
}

proptest! {
    /// A successful topological sort respects every edge.
    #[test]
    fn topo_sort_respects_edges((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        if let Ok(order) = topo_sort(&g) {
            let pos: Vec<usize> = {
                let mut p = vec![0; n];
                for (i, &node) in order.iter().enumerate() {
                    p[node.index()] = i;
                }
                p
            };
            for (_, e) in g.edges() {
                prop_assert!(pos[e.source.index()] < pos[e.target.index()]);
            }
        } else {
            // A failed sort implies an actual cycle: some node reaches
            // itself through at least one edge.
            let has_cycle = g.node_ids().any(|v| {
                g.successors(v).any(|s| reachable_from(&g, s)[v.index()])
            });
            prop_assert!(has_cycle);
        }
    }

    /// The condensation is always acyclic and partitions the nodes.
    #[test]
    fn condensation_is_dag_and_partition((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let cond = condensation(&g);
        prop_assert!(topo_sort(&cond).is_ok());
        let mut covered = vec![false; n];
        for (_, members) in cond.nodes() {
            for m in members {
                prop_assert!(!covered[m.index()], "node in two components");
                covered[m.index()] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// SCC count is between 1 and n, and filtering all edges away makes the
    /// graph trivially sortable.
    #[test]
    fn scc_count_and_empty_filter((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let sccs = tarjan_scc(&g);
        prop_assert!(!sccs.is_empty() && sccs.len() <= n);
        prop_assert!(topo_sort_filtered(&g, |_, _| false).is_ok());
    }

    /// Every simple path is genuinely simple, ends at the target, and uses
    /// existing edges in a connected sequence.
    #[test]
    fn simple_paths_are_simple((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let s = NodeId(0);
        let t = NodeId((n - 1) as u32);
        for p in simple_paths(&g, s, t, n) {
            prop_assert_eq!(p.target(&g), t);
            let nodes = p.nodes(&g);
            prop_assert_eq!(nodes[0], s);
            let mut d = nodes.clone();
            d.sort();
            d.dedup();
            prop_assert_eq!(d.len(), nodes.len());
            // Edge chaining.
            let mut current = s;
            for &e in &p.edges {
                prop_assert_eq!(g.edge(e).source, current);
                current = g.edge(e).target;
            }
        }
    }

    /// Reachability is reflexive and transitive along edges.
    #[test]
    fn reachability_closure((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for v in g.node_ids() {
            let reach = reachable_from(&g, v);
            prop_assert!(reach[v.index()]);
            for u in g.node_ids() {
                if reach[u.index()] {
                    for s in g.successors(u) {
                        prop_assert!(reach[s.index()]);
                    }
                }
            }
        }
    }
}
