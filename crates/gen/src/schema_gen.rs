//! Random schema generation.
//!
//! The generator is calibrated to the paper's CUPID schema — the input
//! parameter structure of a plant-growth simulator: a *deep part-whole
//! tree* (nested parameter groups), inheritance towers, a few cross-cutting
//! associations, attribute names shared across many classes, and a couple
//! of high-degree auxiliary "hub" classes. Two structural properties matter
//! for reproducing the paper's numbers:
//!
//! * a pure `$>` descent of any depth has semantic length 1 (runs of the
//!   same structural connector collapse), which is how the paper's optimal
//!   answers average ~15 relationships while staying cognitively short;
//! * nodes with *two* part-whole parents create label-tied alternative
//!   routes, which is where the "2-3 returned at E=1" ambiguity comes from.

use ipe_schema::{ClassId, Primitive, RelKind, Schema, SchemaBuilder};
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Shape parameters for [`generate_schema`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of user-defined classes (the paper's CUPID schema has 92).
    pub classes: usize,
    /// Number of part-whole tree roots.
    pub tree_roots: usize,
    /// Fraction of classes placed in the part-whole tree (the rest form
    /// `Isa` towers under tree nodes).
    pub tree_fraction: f64,
    /// Probability that a tree child continues a deep chain (parent is the
    /// previous class) rather than branching from a random earlier class.
    pub chain_bias: f64,
    /// Probability that a tree node receives a second part-whole parent
    /// (creates label-tied alternative completions).
    pub double_parent_prob: f64,
    /// Number of cross-cutting association edges to attempt.
    pub assoc_edges: usize,
    /// Number of hub classes ("auxiliary classes connected to a plethora of
    /// other classes").
    pub hubs: usize,
    /// Association edges per hub.
    pub hub_degree: usize,
    /// Pool of attribute names, reused across classes; smaller pools mean
    /// more ambiguity.
    pub attr_names: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            classes: 92,
            tree_roots: 3,
            tree_fraction: 0.72,
            chain_bias: 0.7,
            double_parent_prob: 0.02,
            assoc_edges: 4,
            hubs: 1,
            hub_degree: 22,
            attr_names: {
                let mut pool: Vec<String> = [
                    "name", "value", "rate", "depth", "temp", "flux", "width", "mass", "conc",
                    "ph", "albedo", "lai",
                ]
                .iter()
                .map(|s| (*s).to_owned())
                .collect();
                // Scientific parameter names are mostly distinct; a larger
                // pool keeps name collisions (and hence the same-name
                // completion tiers) realistically sparse.
                pool.extend((0..18).map(|i| format!("p{i}")));
                pool
            },
            seed: 42,
        }
    }
}

/// A generated schema plus the metadata the experiments need.
#[derive(Clone, Debug)]
pub struct GeneratedSchema {
    /// The schema itself.
    pub schema: Schema,
    /// The hub classes (the domain-knowledge experiments exclude these).
    pub hubs: Vec<ClassId>,
    /// The part-whole tree roots (natural roots for deep queries).
    pub roots: Vec<ClassId>,
    /// Part-whole tree depth of every class (0 for roots and non-tree
    /// classes).
    pub depth: Vec<u32>,
}

/// The CUPID calibration: 92 user classes and approximately 364
/// relationships, the size the paper reports for its real schema.
pub fn cupid_like(seed: u64) -> GeneratedSchema {
    generate_schema(&GenConfig {
        seed,
        ..GenConfig::default()
    })
}

/// Generates a random schema per `config`. The construction never fails:
/// edges that would collide on names are skipped.
pub fn generate_schema(config: &GenConfig) -> GeneratedSchema {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = SchemaBuilder::new();
    let classes: Vec<ClassId> = (0..config.classes)
        .map(|i| b.class(&format!("c{i}")).expect("unique generated names"))
        .collect();
    let mut depth = vec![0u32; config.classes];

    // Part-whole tree.
    let tree_count = (((config.classes as f64) * config.tree_fraction) as usize)
        .max(config.tree_roots + 1)
        .min(config.classes);
    let roots: Vec<ClassId> = classes[..config.tree_roots.min(tree_count)].to_vec();
    for i in config.tree_roots..tree_count {
        let parent_idx = if i > config.tree_roots && rng.random_bool(config.chain_bias) {
            i - 1
        } else {
            rng.random_range(0..i)
        };
        if b.has_part(classes[parent_idx], classes[i]).is_ok() {
            depth[i] = depth[parent_idx] + 1;
        }
        if rng.random_bool(config.double_parent_prob) {
            let second = rng.random_range(0..i);
            if second != parent_idx {
                let _ = b.has_part(classes[second], classes[i]);
            }
        }
    }

    // Isa towers under random tree nodes.
    let mut i = tree_count;
    while i < config.classes {
        let height = rng.random_range(1..=3usize).min(config.classes - i);
        let base_idx = rng.random_range(0..tree_count);
        let mut sup = classes[base_idx];
        let base_depth = depth[base_idx];
        for k in 0..height {
            // classes[i+k] Isa sup.
            if b.isa(classes[i + k], sup).is_ok() {
                depth[i + k] = base_depth;
            }
            sup = classes[i + k];
        }
        i += height;
    }

    // Cross-cutting associations with names reused from a growing pool.
    let mut assoc_names: Vec<String> = Vec::new();
    let mut added = 0;
    let mut attempts = 0;
    while added < config.assoc_edges && attempts < config.assoc_edges * 10 {
        attempts += 1;
        let from = *classes.choose(&mut rng).expect("nonempty");
        let to = *classes.choose(&mut rng).expect("nonempty");
        if from == to {
            continue;
        }
        let reuse = !assoc_names.is_empty() && rng.random_bool(0.5);
        let name = if reuse {
            assoc_names.choose(&mut rng).expect("nonempty").clone()
        } else {
            let n = format!("r{}", assoc_names.len());
            assoc_names.push(n.clone());
            n
        };
        let inv = format!("{name}_of{added}");
        if b.rel_named(RelKind::Assoc, from, to, &name, &inv).is_ok() {
            added += 1;
        }
    }

    // Hubs: the last classes become auxiliary hubs with many incoming
    // associations (their inverses give the hub a high out-degree too).
    // Hub neighbours are drawn from the *deep* end of the part-whole tree:
    // auxiliary bookkeeping classes attach to concrete leaf parameters, and
    // — for the evaluation's shape — this keeps hub-routed junk small per
    // tier (each exit reaches only a shallow subtree) yet present in most
    // queries.
    let hub_classes: Vec<ClassId> = classes.iter().rev().take(config.hubs).copied().collect();
    let max_tree_depth = depth[..tree_count].iter().copied().max().unwrap_or(0);
    let deep_cut = max_tree_depth * 2 / 5;
    let deep_classes: Vec<ClassId> = (0..tree_count)
        .filter(|&i| depth[i] >= deep_cut)
        .map(|i| classes[i])
        .collect();
    for (hi, &hub) in hub_classes.iter().enumerate() {
        let mut added = 0;
        let mut attempts = 0;
        while added < config.hub_degree && attempts < config.hub_degree * 10 {
            attempts += 1;
            let pool = if deep_classes.is_empty() {
                &classes
            } else {
                &deep_classes
            };
            let other = *pool.choose(&mut rng).expect("nonempty");
            if other == hub || hub_classes.contains(&other) {
                continue;
            }
            let name = format!("h{hi}x{added}");
            let inv = format!("hub{hi}_{added}");
            if b.rel_named(RelKind::Assoc, other, hub, &name, &inv).is_ok() {
                added += 1;
            }
        }
    }

    // One attribute per part-whole tree class, names drawn from the shared
    // pool (these are the ambiguous completion targets). Hubs are "without
    // much inherent semantic content" and get none; Isa-tower classes
    // inherit their base's attributes instead of declaring their own,
    // as Section 2.1's specialization semantics suggests.
    for &c in &classes[..tree_count] {
        if hub_classes.contains(&c) {
            continue;
        }
        let name = config
            .attr_names
            .choose(&mut rng)
            .expect("attr pool nonempty")
            .clone();
        let _ = b.attr(c, &name, Primitive::Real);
    }

    let schema = b.build().expect("generated schemas are valid");
    GeneratedSchema {
        schema,
        hubs: hub_classes,
        roots,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cupid_calibration_matches_paper_size() {
        let g = cupid_like(7);
        assert_eq!(g.schema.user_class_count(), 92);
        let rels = g.schema.rel_count();
        assert!(
            (280..=450).contains(&rels),
            "got {rels} relationships; calibration target is ~364"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cupid_like(123);
        let b = cupid_like(123);
        assert_eq!(a.schema.rel_count(), b.schema.rel_count());
        assert_eq!(a.schema.to_json(), b.schema.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let a = cupid_like(1);
        let b = cupid_like(2);
        assert_ne!(a.schema.to_json(), b.schema.to_json());
    }

    #[test]
    fn hubs_have_high_degree() {
        let g = cupid_like(9);
        for &h in &g.hubs {
            let deg = g.schema.out_rels(h).count();
            assert!(deg >= 8, "hub degree {deg}");
        }
    }

    #[test]
    fn tree_is_deep() {
        let g = cupid_like(11);
        let max_depth = g.depth.iter().copied().max().unwrap_or(0);
        assert!(
            max_depth >= 10,
            "part-whole tree should be deep, got {max_depth}"
        );
    }

    #[test]
    fn isa_hierarchy_is_acyclic_by_construction() {
        let g = cupid_like(11);
        for c in g.schema.classes() {
            let anc = g.schema.ancestors(c);
            assert!(anc.len() < g.schema.class_count());
        }
    }

    #[test]
    fn small_schemas_work() {
        let g = generate_schema(&GenConfig {
            classes: 12,
            tree_roots: 1,
            assoc_edges: 3,
            hubs: 1,
            hub_degree: 3,
            ..GenConfig::default()
        });
        assert_eq!(g.schema.user_class_count(), 12);
        assert_eq!(g.hubs.len(), 1);
        assert_eq!(g.roots.len(), 1);
    }
}
