//! Synthetic schemas and query workloads for reproducing the paper's
//! evaluation (Section 5).
//!
//! The paper's experiment ran on the CUPID soil-science schema (92
//! user-defined classes, 364 relationships) with a human subject — the
//! schema designer — providing ten incomplete path expressions and their
//! intended completions. Neither the schema nor the subject is available,
//! so this crate builds the closest synthetic equivalent (see DESIGN.md §3):
//!
//! * [`generate_schema`] produces schemas with the same shape knobs the
//!   paper describes: deep `Isa` chains, part-whole trees, named
//!   associations, attribute names shared across many classes (what makes
//!   disambiguation non-trivial), and *hub* classes — "auxiliary classes
//!   connected to a plethora of other classes but without much inherent
//!   semantic content", which are exactly what the paper's domain-knowledge
//!   experiment excluded;
//! * [`cupid_like`] instantiates the CUPID calibration (92 classes,
//!   ≈364 relationships);
//! * [`generate_workload`] produces incomplete path expressions with a
//!   ground-truth intended set `U` under a configurable intent model
//!   ([`IntentModel`]), including the ~10% of intents that no
//!   domain-independent algorithm can recover (modelled as completions
//!   whose connector rank is strictly dominated, so they stay unreachable
//!   at every `E` — matching the paper's flat recall curve).
//!
//! Everything is deterministic given the seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datagen;
mod schema_gen;
mod workload;

pub use datagen::{generate_database, DataGenConfig};
pub use schema_gen::{cupid_like, generate_schema, GenConfig, GeneratedSchema};
pub use workload::{
    generate_workload, workload_from_json, workload_to_json, IntentModel, QuerySpec, WorkloadConfig,
};
