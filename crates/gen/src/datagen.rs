//! Bulk database generation: the serde-facing wrapper around
//! [`ipe_oodb::gendata`], so a service request (or a bench) can ask for a
//! deterministic synthetic instance by knob values instead of shipping
//! object lists over the wire.

use ipe_oodb::gendata::{populate, DataConfig};
use ipe_oodb::Database;
use ipe_schema::Schema;
use std::sync::Arc;

/// Wire-facing generation knobs for a synthetic database instance.
/// Mirrors [`DataConfig`] with serde support and service-side caps.
/// Absent fields fall back to the [`DataConfig`] defaults (3 objects per
/// class, 4 links per relationship, seed 17).
#[derive(Clone, Copy, Debug, Default, serde::Deserialize, serde::Serialize)]
pub struct DataGenConfig {
    /// Objects instantiated per concrete user class.
    #[serde(default)]
    pub objects_per_class: Option<u64>,
    /// Stored link instances attempted per association/part relationship.
    #[serde(default)]
    pub links_per_rel: Option<u64>,
    /// PRNG seed; equal seeds give identical instances on equal schemas.
    #[serde(default)]
    pub seed: Option<u64>,
}

impl DataGenConfig {
    /// Objects per class after the default fallback.
    pub fn objects_per_class(&self) -> u64 {
        self.objects_per_class.unwrap_or(3)
    }

    /// Links per relationship after the default fallback.
    pub fn links_per_rel(&self) -> u64 {
        self.links_per_rel.unwrap_or(4)
    }

    /// Seed after the default fallback.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(17)
    }
    /// Approximate number of objects this config will create on `schema`,
    /// for request-size caps (every non-primitive class gets an extent).
    pub fn projected_objects(&self, schema: &Schema) -> u64 {
        let classes = schema
            .classes()
            .filter(|&c| !schema.is_primitive(c))
            .count() as u64;
        classes.saturating_mul(self.objects_per_class())
    }
}

/// Generates a deterministic database instance over `schema`.
pub fn generate_database(schema: &Arc<Schema>, cfg: &DataGenConfig) -> Database {
    populate(
        schema,
        &DataConfig {
            objects_per_class: cfg.objects_per_class() as usize,
            links_per_rel: cfg.links_per_rel() as usize,
            seed: cfg.seed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_nonempty() {
        let schema = Arc::new(ipe_schema::fixtures::university());
        let cfg = DataGenConfig::default();
        let a = generate_database(&schema, &cfg);
        let b = generate_database(&schema, &cfg);
        assert!(a.object_count() > 0);
        assert_eq!(a.object_count(), b.object_count());
        assert_eq!(a.link_count(), b.link_count());
    }

    #[test]
    fn config_parses_from_partial_json_with_defaults() {
        let cfg: DataGenConfig = serde_json::from_str(r#"{"seed": 5}"#).unwrap();
        assert_eq!(cfg.seed(), 5);
        assert_eq!(cfg.objects_per_class(), 3);
        assert_eq!(cfg.links_per_rel(), 4);
    }

    #[test]
    fn projected_objects_scales_with_classes() {
        let schema = Arc::new(ipe_schema::fixtures::university());
        let cfg = DataGenConfig {
            objects_per_class: Some(2),
            ..DataGenConfig::default()
        };
        let projected = cfg.projected_objects(&schema);
        assert!(projected >= 2);
        let db = generate_database(&schema, &cfg);
        assert!(db.object_count() as u64 <= projected);
    }
}
