//! Planted-intent query workloads with ground truth.

use crate::schema_gen::GeneratedSchema;
use ipe_algebra::moose::rank;
use ipe_core::{exhaustive, Completer, Completion, CompletionConfig};
use ipe_parser::PathExprAst;
use ipe_schema::{ClassId, Schema};
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the simulated subject's intended completions `U` are derived.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IntentModel {
    /// The subject's intent coincides with the cognitively-optimal
    /// completions (the paper's central finding), except that with the
    /// given probability the intent *additionally* includes one completion
    /// that is connector-rank-dominated — a "special case … unlikely to be
    /// captured by a generic algorithm" (Section 5.3) that stays
    /// unreachable at every `E`, producing the paper's flat ~90% recall.
    OptimalPlusNoise {
        /// Probability that a query carries one unreachable extra intent.
        unreachable_prob: f64,
    },
    /// The subject means exactly the random walk the generator planted,
    /// whether or not it is optimal. A harsher, fully algorithm-independent
    /// intent model for sensitivity experiments.
    PlantedWalk,
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of queries (the paper used 10).
    pub queries: usize,
    /// Intent model.
    pub intent: IntentModel,
    /// Length range of the planted walks, in edges.
    pub walk_len: (usize, usize),
    /// Minimum length (in edges) of the optimal completions; queries whose
    /// answers are shorter are regenerated. The paper's answers averaged
    /// ~15 relationships, so trivially-short queries are unrepresentative.
    pub min_answer_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 10,
            intent: IntentModel::OptimalPlusNoise {
                unreachable_prob: 0.45,
            },
            walk_len: (6, 16),
            min_answer_len: 6,
            seed: 1994,
        }
    }
}

/// One incomplete query with its ground truth.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize, PartialEq, Eq)]
pub struct QuerySpec {
    /// Root class name.
    pub root: String,
    /// Target relationship name.
    pub target: String,
    /// The incomplete path expression, `root~target`.
    pub expr: String,
    /// The intended complete path expressions `U`, as display texts.
    pub intended: Vec<String>,
    /// Whether `intended` contains a completion that no setting of `E` can
    /// recover (rank-dominated).
    pub has_unreachable_intent: bool,
}

impl QuerySpec {
    /// Parses the incomplete expression.
    pub fn ast(&self) -> PathExprAst {
        PathExprAst::incomplete(&self.root, &self.target)
    }
}

/// Serializes a workload to JSON (for archiving the exact queries behind a
/// reported experiment).
pub fn workload_to_json(workload: &[QuerySpec]) -> String {
    serde_json::to_string_pretty(workload).expect("workload serialization cannot fail")
}

/// Loads a workload from JSON.
pub fn workload_from_json(json: &str) -> Result<Vec<QuerySpec>, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Generates a workload of incomplete queries with ground-truth intended
/// sets over a generated schema.
pub fn generate_workload(gen: &GeneratedSchema, cfg: &WorkloadConfig) -> Vec<QuerySpec> {
    let schema = &gen.schema;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // The simulated subject's intent never routes through the auxiliary hub
    // classes (they carry no semantics); this matches the paper's
    // observation that domain knowledge only ever removed junk from S and
    // left the intended completions untouched.
    let engine = Completer::with_config(
        schema,
        CompletionConfig {
            excluded_classes: gen.hubs.clone(),
            ..Default::default()
        },
    );
    let candidates: Vec<ClassId> = schema
        .classes()
        .filter(|&c| {
            !schema.is_primitive(c) && !gen.hubs.contains(&c) && schema.out_rels(c).count() > 0
        })
        .collect();
    let mut out = Vec::new();
    let mut attempts = 0;
    let max_attempts = cfg.queries * 200;
    while out.len() < cfg.queries && attempts < max_attempts {
        attempts += 1;
        // Prefer tree roots: the paper's queries descend the deep CUPID
        // parameter structure. Fall back to arbitrary classes late in the
        // attempt budget.
        let from_roots = !gen.roots.is_empty() && rng.random_bool(0.7);
        let pool: &[ClassId] = if from_roots { &gen.roots } else { &candidates };
        let Some(walk) = plant_walk(schema, pool, &gen.hubs, cfg, &mut rng) else {
            continue;
        };
        let root_name = schema.class_name(walk.root).to_owned();
        let target_name = schema
            .rel_name(*walk.edges.last().expect("walk has edges"))
            .to_owned();
        // The target name must not immediately trivialize (root must not be
        // a hub; ensured) nor fail to resolve.
        let ast = PathExprAst::incomplete(&root_name, &target_name);
        let Ok(optimal) = engine.complete(&ast) else {
            continue;
        };
        if optimal.is_empty() {
            continue;
        }
        // Regenerate trivially-short queries (relax once three quarters of
        // the attempt budget is spent, so workloads always fill), skip
        // unambiguous targets (a name carried by a single relationship has
        // nothing to disambiguate), and never repeat a query.
        let min_len = optimal.iter().map(|c| c.len()).min().unwrap_or(0);
        if min_len < cfg.min_answer_len && attempts < max_attempts * 3 / 4 {
            continue;
        }
        let ambiguous = schema
            .symbol(&target_name)
            .map(|s| schema.rels_named(s).len() >= 2)
            .unwrap_or(false);
        if !ambiguous && attempts < max_attempts * 3 / 4 {
            continue;
        }
        if out
            .iter()
            .any(|q: &QuerySpec| q.root == root_name && q.target == target_name)
        {
            continue;
        }
        let (mut intended, mut unreachable) = match cfg.intent {
            IntentModel::PlantedWalk => (vec![walk_display(schema, &walk)], false),
            IntentModel::OptimalPlusNoise { unreachable_prob } => {
                let mut texts: Vec<String> = optimal
                    .iter()
                    .map(|c| c.display(schema).to_string())
                    .collect();
                let mut unreachable = false;
                if rng.random_bool(unreachable_prob) {
                    if let Some(extra) =
                        find_rank_dominated(schema, walk.root, &target_name, &optimal)
                    {
                        texts.push(extra.display(schema).to_string());
                        unreachable = true;
                    }
                }
                (texts, unreachable)
            }
        };
        intended.sort();
        intended.dedup();
        if intended.is_empty() {
            unreachable = false;
        }
        out.push(QuerySpec {
            root: root_name.clone(),
            target: target_name.clone(),
            expr: format!("{root_name}~{target_name}"),
            intended,
            has_unreachable_intent: unreachable,
        });
    }
    out
}

struct Walk {
    root: ClassId,
    edges: Vec<ipe_schema::RelId>,
}

/// Renders a planted walk in the paper's path expression syntax.
fn walk_display(schema: &Schema, walk: &Walk) -> String {
    let c = Completion {
        root: walk.root,
        edges: walk.edges.clone(),
        label: ipe_algebra::moose::Label::IDENTITY,
    };
    c.display(schema).to_string()
}

/// Plants a plausibility-biased acyclic walk ending at any edge; the final
/// edge's name becomes the query target.
fn plant_walk(
    schema: &Schema,
    candidates: &[ClassId],
    hubs: &[ClassId],
    cfg: &WorkloadConfig,
    rng: &mut ChaCha8Rng,
) -> Option<Walk> {
    let root = *candidates.choose(rng)?;
    let len = rng.random_range(cfg.walk_len.0..=cfg.walk_len.1.max(cfg.walk_len.0));
    let mut on_path = vec![false; schema.class_count()];
    on_path[root.index()] = true;
    let mut current = root;
    let mut edges = Vec::new();
    for step in 0..len {
        let last = step + 1 == len;
        let options: Vec<(ipe_schema::RelId, ClassId, u32)> = schema
            .out_rels(current)
            .filter(|r| !on_path[r.target.index()])
            .filter(|r| !hubs.contains(&r.target))
            .filter(|r| last || !schema.is_primitive(r.target))
            .map(|r| {
                let w = match r.kind {
                    ipe_schema::RelKind::Isa => 3,
                    ipe_schema::RelKind::HasPart => 8,
                    ipe_schema::RelKind::IsPartOf => 1,
                    ipe_schema::RelKind::MayBe => 2,
                    ipe_schema::RelKind::Assoc => 1,
                };
                (r.id, r.target, w)
            })
            .collect();
        if options.is_empty() {
            break;
        }
        let total: u32 = options.iter().map(|o| o.2).sum();
        let mut pick = rng.random_range(0..total);
        let mut chosen = options[0];
        for o in &options {
            if pick < o.2 {
                chosen = *o;
                break;
            }
            pick -= o.2;
        }
        edges.push(chosen.0);
        on_path[chosen.1.index()] = true;
        current = chosen.1;
    }
    if edges.is_empty() {
        return None;
    }
    Some(Walk { root, edges })
}

/// Finds one consistent completion whose connector rank is strictly worse
/// than every optimal completion's — unreachable at any `E`.
fn find_rank_dominated(
    schema: &Schema,
    root: ClassId,
    target: &str,
    optimal: &[Completion],
) -> Option<Completion> {
    let best_rank = optimal
        .iter()
        .map(|c| rank(c.label.connector))
        .min()
        .expect("optimal nonempty");
    let cfg = CompletionConfig {
        max_depth: 8,
        max_results: 2_000,
        ..Default::default()
    };
    let all = exhaustive::all_consistent(schema, root, target, &cfg).ok()?;
    all.into_iter()
        .find(|c| rank(c.label.connector) > best_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::cupid_like;

    #[test]
    fn workload_is_deterministic_and_full_size() {
        let g = cupid_like(5);
        let cfg = WorkloadConfig::default();
        let a = generate_workload(&g, &cfg);
        let b = generate_workload(&g, &cfg);
        assert_eq!(a.len(), 10);
        assert_eq!(
            a.iter().map(|q| &q.expr).collect::<Vec<_>>(),
            b.iter().map(|q| &q.expr).collect::<Vec<_>>()
        );
    }

    #[test]
    fn intended_sets_are_nonempty() {
        let g = cupid_like(6);
        let qs = generate_workload(&g, &WorkloadConfig::default());
        for q in &qs {
            assert!(!q.intended.is_empty(), "{}", q.expr);
            assert!(q.expr.contains('~'));
        }
    }

    #[test]
    fn planted_walk_model_yields_single_intents() {
        let g = cupid_like(7);
        let cfg = WorkloadConfig {
            intent: IntentModel::PlantedWalk,
            ..Default::default()
        };
        let qs = generate_workload(&g, &cfg);
        for q in &qs {
            assert_eq!(q.intended.len(), 1);
            assert!(!q.has_unreachable_intent);
        }
    }

    #[test]
    fn workload_serde_round_trip() {
        let g = cupid_like(21);
        let qs = generate_workload(
            &g,
            &WorkloadConfig {
                queries: 4,
                ..Default::default()
            },
        );
        let json = workload_to_json(&qs);
        let back = workload_from_json(&json).unwrap();
        assert_eq!(qs, back);
        assert!(workload_from_json("[{").is_err());
    }

    #[test]
    fn unreachable_intents_appear_with_default_probability() {
        let g = cupid_like(8);
        let cfg = WorkloadConfig {
            queries: 30,
            ..Default::default()
        };
        let qs = generate_workload(&g, &cfg);
        let n = qs.iter().filter(|q| q.has_unreachable_intent).count();
        assert!(n > 0, "expected some unreachable intents out of 30");
    }
}
