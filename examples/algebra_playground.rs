//! The path-algebra framework beyond the paper's instance: classic
//! algebras on the same solver, and the property structure (including the
//! distributivity failure that motivates Algorithm 2's caution sets).
//!
//! Run: `cargo run --example algebra_playground`

use ipe::algebra::classic::{MostReliable, Prob, ShortestPath};
use ipe::algebra::moose::{compose, Connector, Label, MooseAlgebra, RelKind};
use ipe::algebra::properties;
use ipe::algebra::solver::optimal_path_labels;
use ipe::graph::DiGraph;

fn main() {
    // A little network: a -> b -> d, a -> c -> d, a -> d.
    let mut g: DiGraph<&str, (u64, f64)> = DiGraph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, (1, 0.9));
    g.add_edge(b, d, (1, 0.9));
    g.add_edge(a, c, (5, 0.99));
    g.add_edge(c, d, (1, 0.99));
    g.add_edge(a, d, (3, 0.5));

    let (short, stats) = optimal_path_labels(&g, &ShortestPath, |_, e| e.weight.0, a, d);
    println!(
        "shortest a->d: {short:?}  ({} recursive calls)",
        stats.calls
    );
    let (rel, _) = optimal_path_labels(&g, &MostReliable, |_, e| Prob::new(e.weight.1), a, d);
    println!("most reliable a->d: {:.4}", rel[0].value());

    // The Moose connector algebra: Table 1 compositions.
    println!("\nCON_c worked examples (Section 3.3.1):");
    println!(
        "  $> then <$  =>  {}   (engine/chassis share subparts)",
        compose(Connector::HAS_PART, Connector::IS_PART_OF)
    );
    println!(
        "  .  then <@  =>  {}   (course possibly taught by a professor)",
        compose(Connector::ASSOC, Connector::MAY_BE)
    );

    // Semantic lengths of the paper's two examples.
    use RelKind::*;
    let zigzag = [Isa, MayBe, MayBe, MayBe, Isa, Isa];
    println!(
        "\nsemantic length of the Isa zig-zag: {}",
        Label::of_kinds(&zigzag).semlen
    );
    let chain = [Assoc, Assoc, Assoc, HasPart];
    println!(
        "semantic length of teacher.teach.student.department$>professor: {}",
        Label::of_kinds(&chain).semlen
    );

    // Distributivity fails for the Moose algebra — the reason the paper's
    // Algorithm 2 needs caution sets.
    let population: Vec<Label> = {
        let mut p = vec![Label::IDENTITY];
        for x in RelKind::ALL {
            p.push(Label::single(x));
            for y in RelKind::ALL {
                p.push(Label::of_kinds(&[x, y]));
            }
        }
        p
    };
    match properties::find_distributivity_counterexample(&MooseAlgebra, &population) {
        Some((l1, l2, l3)) => {
            println!("\ndistributivity counterexample (property 6 fails, Section 3.5):");
            println!("  L1 = {l1:?}");
            println!("  L2 = {l2:?}");
            println!("  L3 = {l3:?}");
        }
        None => println!("\nno distributivity counterexample found (unexpected)"),
    }
    assert!(
        properties::find_distributivity_counterexample(&ShortestPath, &[0, 1, 2, 3, 4]).is_none()
    );
    println!("shortest path, by contrast, is distributive (properties 1-6 hold).");
}
