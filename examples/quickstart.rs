//! Quickstart: disambiguate the paper's flagship query `ta ~ name` on the
//! Figure 2 university schema.
//!
//! Run: `cargo run --example quickstart`

use ipe::prelude::*;

fn main() {
    // The paper's Figure 2 schema: persons, students, TAs, professors,
    // courses, departments, universities — with every inverse relationship
    // present (Section 2.1 assumes so).
    let schema = ipe::schema::fixtures::university();
    println!(
        "schema: {} classes, {} relationships\n",
        schema.class_count(),
        schema.rel_count()
    );

    // "The names of all teaching assistants", written the way a person
    // would ask for it.
    let expr = parse_path_expression("ta~name").expect("syntax");
    println!("incomplete path expression: {expr}");

    let engine = Completer::new(&schema);
    let outcome = engine
        .complete_with_stats(&expr)
        .expect("completion succeeds");

    println!(
        "\n{} optimal completion(s)  ({} node explorations, {} candidate paths):\n",
        outcome.completions.len(),
        outcome.stats.calls,
        outcome.stats.completions_recorded,
    );
    for c in &outcome.completions {
        println!(
            "  {}    [connector {}, semantic length {}]",
            c.display(&schema),
            c.label.connector,
            c.label.semlen
        );
    }

    // The same question with the vocabulary of Section 2.2.2: these are the
    // two Isa-chain readings; the "names of courses taken by TAs" reading
    // and friends lose because their connector is weaker.
    println!("\nfor contrast, a few consistent-but-implausible readings:");
    for text in [
        "ta@>grad@>student.take.name",
        "ta@>instructor@>teacher.teach.name",
        "ta@>grad@>student.department.name",
    ] {
        let ast = parse_path_expression(text).expect("syntax");
        let path = &engine.complete(&ast).expect("valid complete expression")[0];
        println!(
            "  {}    [connector {}, semantic length {}]",
            text, path.label.connector, path.label.semlen
        );
    }
}
