//! Authoring a schema programmatically, persisting it, and visualizing it —
//! the schema-designer workflow around the completion engine.
//!
//! Run: `cargo run --example schema_authoring`

use ipe::prelude::*;
use ipe::schema::{dot, Primitive, Schema};

fn main() {
    // A small e-commerce schema, built from scratch.
    let mut b = SchemaBuilder::new();
    let shop = b.class("shop").unwrap();
    let catalog = b.class("catalog").unwrap();
    let product = b.class("product").unwrap();
    let digital = b.class("digital_product").unwrap();
    let physical = b.class("physical_product").unwrap();
    let customer = b.class("customer").unwrap();
    let order = b.class("order").unwrap();

    b.has_part(shop, catalog).unwrap();
    b.has_part(catalog, product).unwrap();
    b.isa(digital, product).unwrap();
    b.isa(physical, product).unwrap();
    b.assoc(customer, order, "places").unwrap();
    b.assoc(order, product, "contains").unwrap();
    b.attr(product, "price", Primitive::Real).unwrap();
    b.attr(customer, "email", Primitive::Text).unwrap();
    b.attr(physical, "weight", Primitive::Real).unwrap();

    let schema = b.build().expect("valid schema");
    println!(
        "built: {} classes, {} relationships",
        schema.class_count(),
        schema.rel_count()
    );

    // Persist and reload (validation reruns on load).
    let json = schema.to_json();
    let reloaded = Schema::from_json(&json).expect("round trip");
    assert_eq!(reloaded.rel_count(), schema.rel_count());
    println!("serialized to {} bytes of JSON and reloaded", json.len());

    // Visualize (pipe into `dot -Tsvg` to render).
    let graphviz = dot::to_dot(&schema, &dot::DotOptions::default());
    println!("\n{graphviz}");

    // And of course: disambiguate on it.
    let engine = Completer::new(&schema);
    for q in ["shop~price", "customer~weight", "shop~email"] {
        let out = engine.complete(&parse_path_expression(q).unwrap()).unwrap();
        println!("{q}:");
        for c in &out {
            println!(
                "  {}   [{} semlen {}]",
                c.display(&schema),
                c.label.connector,
                c.label.semlen
            );
        }
    }
}
