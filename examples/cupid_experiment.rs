//! A compact rerun of the paper's Section 5 experiment on a synthetic
//! CUPID-calibrated schema: ten incomplete queries with planted intent,
//! recall/precision swept over E, with and without domain knowledge.
//!
//! Run: `cargo run --release --example cupid_experiment [seed]`

use ipe::gen::{cupid_like, generate_workload, WorkloadConfig};
use ipe::metrics::{sweep, time_queries, ExperimentConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1994);
    let gen = cupid_like(seed);
    println!(
        "synthetic CUPID: {} user classes, {} relationships (paper: 92 / 364), seed {seed}\n",
        gen.schema.user_class_count(),
        gen.schema.rel_count()
    );
    let workload = generate_workload(
        &gen,
        &WorkloadConfig {
            seed: seed + 1,
            ..Default::default()
        },
    );
    println!("the ten incomplete queries and their intended completions:");
    for q in &workload {
        println!("  {}   (|U| = {})", q.expr, q.intended.len());
    }

    for (label, exclude) in [("standard", false), ("with domain knowledge", true)] {
        let points = sweep(
            &gen,
            &workload,
            &ExperimentConfig {
                exclude_hubs: exclude,
                ..Default::default()
            },
        );
        println!("\n{label}:");
        println!("  E   recall   precision   avg |S|   avg answer length");
        for p in &points {
            println!(
                "  {}   {:>5.1}%   {:>8.1}%   {:>7.1}   {:>6.1}",
                p.e,
                100.0 * p.avg_recall,
                100.0 * p.avg_precision,
                p.avg_returned,
                p.avg_length
            );
        }
    }

    println!("\nresponse time per query at E=5 (sorted):");
    for t in time_queries(&gen, &workload, 5) {
        println!(
            "  {:<14} {:>9.3} ms   {:>7} recursive calls   {} results",
            t.expr,
            t.micros as f64 / 1000.0,
            t.calls,
            t.results
        );
    }
}
