//! Interactive disambiguation session over the university schema — the
//! user-in-the-loop flow of the paper's Figure 1, on stdin/stdout.
//!
//! Type incomplete path expressions (e.g. `ta~name`); the engine proposes
//! completions; pick one by number to evaluate it against the sample
//! database; `quit` exits. Feedback (`ok N` / `no N`) feeds the learning
//! store, and `suggest` shows the exclusion candidates learned so far.
//!
//! Run: `cargo run --example interactive`  (pipe a script for CI use)

use ipe::core::feedback::{FeedbackStore, SuggestionPolicy, Verdict};
use ipe::oodb::fixtures::university_db;
use ipe::prelude::*;
use std::io::{self, BufRead, Write};

fn main() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = university_db(&schema);
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(2));
    let mut store = FeedbackStore::new(&schema);
    let mut last: Vec<ipe::core::Completion> = Vec::new();

    println!(
        "ipe interactive — university schema loaded ({} classes).",
        schema.class_count()
    );
    println!(
        "enter an incomplete path expression (e.g. ta~name), `targets <class>`, `suggest`, or `quit`."
    );
    let stdin = io::stdin();
    loop {
        print!("> ");
        let _ = io::stdout().flush();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim().to_owned();
        match line.as_str() {
            "" => continue,
            "quit" | "exit" => break,
            "suggest" => {
                let suggestions = store.suggest_exclusions(&SuggestionPolicy::default());
                if suggestions.is_empty() {
                    println!("no exclusion suggestions yet");
                } else {
                    for c in suggestions {
                        println!("consider excluding: {}", schema.class_name(c));
                    }
                }
                continue;
            }
            _ => {}
        }
        if let Some(class_name) = line.strip_prefix("targets ") {
            match schema.class_named(class_name.trim()) {
                Some(root) => {
                    for t in ipe::core::suggest::suggest_targets(&schema, root, engine.config()) {
                        println!("  {}  ({} carriers)", t.name, t.carriers);
                    }
                }
                None => println!("unknown class `{class_name}`"),
            }
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("ok ")
            .or_else(|| line.strip_prefix("no "))
        {
            let verdict = if line.starts_with("ok") {
                Verdict::Approved
            } else {
                Verdict::Rejected
            };
            match rest.trim().parse::<usize>() {
                Ok(n) if n >= 1 && n <= last.len() => {
                    store.record(&schema, &last[n - 1], verdict);
                    println!("recorded");
                }
                _ => println!("usage: ok N / no N (N from the last candidate list)"),
            }
            continue;
        }
        if let Ok(n) = line.parse::<usize>() {
            if n >= 1 && n <= last.len() {
                let ast = last[n - 1].to_ast(&schema);
                match db.eval(&ast) {
                    Ok(out) => {
                        let vals = out.values();
                        if vals.is_empty() {
                            println!("{} object(s): {:?}", out.len(), out.objects());
                        } else {
                            for v in vals {
                                println!("{v}");
                            }
                        }
                    }
                    Err(e) => println!("evaluation error: {e}"),
                }
            } else {
                println!("no candidate #{n}");
            }
            continue;
        }
        let ast = match parse_path_expression(&line) {
            Ok(a) => a,
            Err(e) => {
                println!("parse error: {e}");
                continue;
            }
        };
        match engine.complete(&ast) {
            Ok(out) => {
                if out.is_empty() {
                    println!("no consistent completion");
                }
                for (i, c) in out.iter().enumerate() {
                    println!(
                        "  {}. {}   [{} semlen {}]",
                        i + 1,
                        c.display(&schema),
                        c.label.connector,
                        c.label.semlen
                    );
                }
                last = out;
                if !last.is_empty() {
                    println!("(enter a number to evaluate, `ok N`/`no N` to give feedback)");
                }
            }
            Err(e) => println!("completion error: {e}"),
        }
    }
    println!("bye");
}
