//! End-to-end flow of the paper's Figure 1: an incomplete query enters, the
//! completion module proposes fully-specified path expressions, the user
//! approves one, and the path expression evaluator runs it over the object
//! store.
//!
//! Run: `cargo run --example registrar`

use ipe::oodb::fixtures::university_db;
use ipe::prelude::*;

fn main() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = university_db(&schema);
    let engine = Completer::new(&schema);

    let queries = [
        "ta~name",           // names of teaching assistants
        "department~take",   // the courses "of" departments
        "student~ssn",       // social security numbers of students
        "course~university", // which university a course belongs to
    ];

    for q in queries {
        println!("query: {q}");
        let ast = parse_path_expression(q).expect("syntax");
        let completions = engine.complete(&ast).expect("completion succeeds");
        if completions.is_empty() {
            println!("  (no consistent completion)\n");
            continue;
        }
        for (i, c) in completions.iter().enumerate() {
            println!(
                "  candidate {}: {}   [{} / semlen {}]",
                i + 1,
                c.display(&schema),
                c.label.connector,
                c.label.semlen
            );
        }
        // The user approves the first candidate; evaluate it.
        let approved = completions[0].to_ast(&schema);
        match db.eval(&approved) {
            Ok(out) => {
                let values = out.values();
                if values.is_empty() {
                    println!("  -> {} object(s): {:?}", out.len(), out.objects());
                } else {
                    let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                    println!("  -> values: {}", rendered.join(", "));
                }
            }
            Err(e) => println!("  -> evaluation error: {e}"),
        }
        println!();
    }
}
