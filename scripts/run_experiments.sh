#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation plus the
# extension studies, writing the combined output to experiments_output.txt.
# Usage: scripts/run_experiments.sh [seed] [#seeds]
set -euo pipefail
cd "$(dirname "$0")/.."
SEED="${1:-1994}"
NSEEDS="${2:-3}"
OUT=experiments_output.txt

cargo build --release -p ipe-bench

{
  echo "== Table 1 =="
  cargo run -q -p ipe-bench --release --bin table1_con
  echo; echo "== Figure 3 =="
  cargo run -q -p ipe-bench --release --bin fig3_order
  echo; echo "== Section 5.3 statistics =="
  cargo run -q -p ipe-bench --release --bin stats_table -- "$SEED"
  echo; echo "== Figure 5 =="
  cargo run -q -p ipe-bench --release --bin fig5_recall -- "$SEED" "$NSEEDS"
  echo; echo "== Figure 6 =="
  cargo run -q -p ipe-bench --release --bin fig6_precision -- "$SEED" "$NSEEDS"
  echo; echo "== Figure 7 =="
  cargo run -q -p ipe-bench --release --bin fig7_response_time -- "$SEED"
  echo; echo "== Extension: baseline comparison =="
  cargo run -q -p ipe-bench --release --bin baseline_compare -- "$SEED" 2
  echo; echo "== Extension: scaling =="
  cargo run -q -p ipe-bench --release --bin scaling
} | tee "$OUT"
