#!/usr/bin/env bash
# The full local gate: build, tests, lints, formatting — in both metrics
# modes. CI-equivalent; run before pushing.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== build (obs-off) =="
cargo build --workspace --features ipe/obs-off

echo "== tests =="
cargo test -q --workspace

echo "== tests (obs-off) =="
cargo test -q -p ipe-obs -p ipe-core -p ipe-index -p ipe-oodb -p ipe-query -p ipe-repl -p ipe-service -p ipe-store -p ipe-tenant --features obs-off

echo "== service smoke (incl. 64-connection reactor burst) =="
serve_log="$(mktemp)"
./target/release/ipe serve --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#.*http://##p' "$serve_log" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "error: server never announced its address:" >&2
  cat "$serve_log" >&2
  exit 1
fi
./target/release/service_load --smoke --shutdown --addr "$addr"
wait "$serve_pid"   # clean exit after POST /v1/shutdown
trap - EXIT
rm -f "$serve_log"

echo "== reactor partial-I/O edges =="
# Slow-loris heads, split request lines, write backpressure, mid-body
# deadline expiry — the front end's worst-case socket behaviour.
cargo test -q -p ipe-service --test reactor_edges

echo "== metrics-lint =="
# Prometheus exposition must pass the in-repo format lint, in both modes:
# the service-level test hits GET /metrics?format=prometheus on a live
# server and runs ipe_obs::prom::lint over the body.
cargo test -q -p ipe-obs prom
cargo test -q -p ipe-service --test server prometheus_
cargo test -q -p ipe-service --test server prometheus_ --features obs-off

echo "== batch smoke =="
./target/release/batch_bench --smoke

echo "== index smoke =="
./target/release/index_bench --smoke

echo "== query smoke =="
./target/release/query_bench --smoke

echo "== store smoke =="
./target/release/store_bench --smoke

echo "== store kill -9 recovery smoke =="
./target/release/store_bench --kill9-smoke

echo "== replication smoke =="
./target/release/repl_bench --smoke

echo "== tenant smoke =="
./target/release/tenant_bench --smoke

echo "== WAL v1 -> v2 migration =="
cargo test -q -p ipe-store --test migration

echo "== replication kill -9 catch-up smoke =="
./target/release/repl_bench --kill9-smoke

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (obs-off) =="
cargo clippy --workspace --features ipe/obs-off -- -D warnings

echo "== fmt =="
cargo fmt --check

echo "OK: all checks passed"
