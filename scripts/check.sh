#!/usr/bin/env bash
# The full local gate: build, tests, lints, formatting — in both metrics
# modes. CI-equivalent; run before pushing.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== build (obs-off) =="
cargo build --workspace --features ipe/obs-off

echo "== tests =="
cargo test -q --workspace

echo "== tests (obs-off) =="
cargo test -q -p ipe-obs -p ipe-core --features obs-off

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (obs-off) =="
cargo clippy --workspace --features ipe/obs-off -- -D warnings

echo "== fmt =="
cargo fmt --check

echo "OK: all checks passed"
