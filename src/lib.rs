//! # ipe — Incomplete Path Expressions and their Disambiguation
//!
//! Facade crate re-exporting the `ipe` workspace: a Rust implementation of
//! *Ioannidis & Lashkari, "Incomplete Path Expressions and their
//! Disambiguation", SIGMOD 1994*.
//!
//! Start with the doctest below, or the `examples/` directory.
//!
//! ```
//! use ipe::prelude::*;
//!
//! // The paper's Figure 2 university schema.
//! let schema = ipe::schema::fixtures::university();
//!
//! // "names of teaching assistants", written without spelling out the path.
//! let expr = parse_path_expression("ta~name").unwrap();
//! let engine = Completer::new(&schema);
//! let completions = engine.complete(&expr).unwrap();
//!
//! // The two optimal completions from Section 2.2.2 of the paper.
//! let texts: Vec<String> = completions.iter().map(|c| c.display(&schema).to_string()).collect();
//! assert!(texts.contains(&"ta@>grad@>student@>person.name".to_string()));
//! assert!(texts.contains(&"ta@>instructor@>teacher@>employee@>person.name".to_string()));
//! ```

pub use ipe_algebra as algebra;
pub use ipe_core as core;
pub use ipe_gen as gen;
pub use ipe_graph as graph;
pub use ipe_index as index;
pub use ipe_metrics as metrics;
pub use ipe_obs as obs;
pub use ipe_oodb as oodb;
pub use ipe_parser as parser;
pub use ipe_query as query;
pub use ipe_schema as schema;
pub use ipe_service as service;
pub use ipe_store as store;

/// One-stop imports for typical use.
pub mod prelude {
    pub use ipe_algebra::moose::{Connector, Label, MooseAlgebra};
    pub use ipe_core::{Completer, CompletionConfig, Pruning};
    pub use ipe_parser::parse_path_expression;
    pub use ipe_schema::{RelKind, Schema, SchemaBuilder};
}
