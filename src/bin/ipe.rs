//! `ipe` — command-line front end for the incomplete path expression
//! disambiguator.
//!
//! ```text
//! ipe complete [--schema FILE | --fixture NAME] [--e N] [--exclude CLASS]... EXPR
//! ipe explain  [--schema FILE | --fixture NAME] EXPR
//! ipe eval     EXPR                      (university fixture database)
//! ipe query    [--e N] [--objects N] [--links N] EXPR   (disambiguate + evaluate)
//! ipe gen      [--seed N] [--classes N]  (print a synthetic schema as JSON)
//! ipe dot      [--schema FILE | --fixture NAME] [--inverses]
//! ipe stats    [--schema FILE | --fixture NAME]
//! ipe serve    [--addr HOST:PORT] [--reactors N] [--cache-capacity N] ...
//! ```

use ipe::core::{complete_batch, explain, BatchOptions, Completer, CompletionConfig, SearchLimits};
use ipe::gen::{generate_schema, GenConfig};
use ipe::index::{IndexMode, IndexedSchema, SearchIndex};
use ipe::oodb::fixtures::university_db;
use ipe::parser::parse_path_expression;
use ipe::schema::{dot, Schema};
use ipe::service::{FsyncPolicy, Server, ServiceConfig};
use std::process::ExitCode;

/// The explicit subcommand names.
const COMMANDS: &[&str] = &[
    "complete", "explain", "eval", "query", "gen", "dot", "stats", "serve", "batch",
];

/// Flags that consume the following argument, for subcommand scanning.
const VALUE_FLAGS: &[&str] = &[
    "--schema",
    "--fixture",
    "--e",
    "--exclude",
    "--seed",
    "--classes",
    "--report",
    "--addr",
    "--reactors",
    "--workers",
    "--queue-depth",
    "--timeout-ms",
    "--cache-capacity",
    "--cache-shards",
    "--cache-bytes",
    "--batch-threads",
    "--threads",
    "--objects",
    "--links",
    "--deadline-ms",
    "--data-dir",
    "--fsync",
    "--snapshot-every",
    "--index",
    "--trace-sample",
    "--slow-ms",
    "--flight-capacity",
    "--follow",
];

/// Resolves the subcommand by scanning *past* flags, so global flags
/// compose with every subcommand: `ipe --trace serve ...` dispatches to
/// `serve` (not to an implicit `complete` on the word "serve"), while
/// `ipe --trace 'ta~name'` still implies `complete`.
fn split_command(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--help" || a == "-h" || a == "help" {
            return Ok(("help".to_owned(), Vec::new()));
        }
        if a.starts_with('-') {
            i += if VALUE_FLAGS.contains(&a) { 2 } else { 1 };
            continue;
        }
        // First positional argument: an explicit subcommand, or the EXPR
        // of an implicit `complete`.
        if COMMANDS.contains(&a) {
            let mut rest = args.to_vec();
            rest.remove(i);
            return Ok((a.to_owned(), rest));
        }
        return if a.contains('~') || i > 0 {
            Ok(("complete".to_owned(), args.to_vec()))
        } else {
            Err(format!("unknown command `{a}`\n{USAGE}"))
        };
    }
    // Flags only: implicit complete (fails later with "missing EXPR").
    Ok(("complete".to_owned(), args.to_vec()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let result = split_command(&args).and_then(|(cmd, rest)| match cmd.as_str() {
        "complete" => cmd_complete(&rest),
        "explain" => cmd_explain(&rest),
        "eval" => cmd_eval(&rest),
        "query" => cmd_query(&rest),
        "gen" => cmd_gen(&rest),
        "dot" => cmd_dot(&rest),
        "stats" => cmd_stats(&rest),
        "serve" => cmd_serve(&rest),
        "batch" => cmd_batch(&rest),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ipe complete [--schema FILE | --fixture NAME] [--e N] [--exclude CLASS]...
               [--index on|off|lazy] [--trace] [--report FILE] EXPR
  ipe explain  [--schema FILE | --fixture NAME] EXPR
  ipe eval     EXPR
  ipe query    [--schema FILE | --fixture NAME] [--e N] [--exclude CLASS]...
               [--objects N] [--links N] [--seed N] [--deadline-ms N] EXPR
  ipe gen      [--seed N] [--classes N]
  ipe dot      [--schema FILE | --fixture NAME] [--inverses]
  ipe stats    [--schema FILE | --fixture NAME]
  ipe serve    [--schema FILE | --fixture NAME] [--addr HOST:PORT]
               [--reactors N] [--queue-depth N] [--timeout-ms N]
               [--cache-capacity N] [--cache-shards N] [--cache-bytes N]
               [--batch-threads N]
               [--data-dir DIR] [--fsync always|interval[:MS]|never]
               [--snapshot-every N] [--index on|off|lazy] [--report FILE]
               [--trace-sample N] [--slow-ms N] [--flight-capacity N]
               [--access-log] [--follow HOST:PORT]
  ipe batch    [--schema FILE | --fixture NAME] [--e N] [--exclude CLASS]...
               [--threads N] [--deadline-ms N] FILE

An EXPR containing `~` (or starting with a flag) implies `complete`.
--trace prints the structured search event log; --report FILE writes the
full JSON run report (stats, counters, timings, trace). Both are inert in
builds with the `obs-off` feature.

`serve` starts the resident disambiguation server (default address
127.0.0.1:7474, port 0 picks an ephemeral port) with the chosen schema
registered as `default`. It serves POST /v1/complete, GET /v1/schemas,
GET/PUT/DELETE /v1/schemas/:name, GET /healthz, GET /metrics, and
POST /v1/shutdown,
memoizing completions in a sharded LRU cache invalidated by schema
hot-swaps. --reactors N sets the number of epoll reactor threads, each
owning an SO_REUSEPORT acceptor shard (default 0 = one per core;
--workers is accepted as an alias); --queue-depth caps live connections
per reactor (503 beyond); --timeout-ms bounds each request from first
byte to framed (408 on expiry). With --report FILE, the final /metrics report is written there
on clean shutdown. With --data-dir DIR, registry changes are written
through to a checksummed WAL (fsynced per --fsync, compacted into a
snapshot every --snapshot-every records) and recovered on restart; a
best-effort warmup journal pre-warms the completion cache.

Multi-tenancy: PUT/GET/DELETE /v1/tenants/:tenant manages tenant
namespaces (quotas, per-tenant defaults, cache budgets; persisted to
DIR/tenants.json with --data-dir), and /v1/t/:tenant/... scopes the
schema/complete/batch/data/query routes to one tenant — the bare routes
are the built-in `default` tenant. --cache-bytes N sets the default byte
budget for each tenant's cache partition (0 = unlimited); a tenant's own
`cache_bytes` overrides it. Over-quota requests answer 429 with a
Retry-After header and a machine-readable retry envelope.

With --follow HOST:PORT, `serve` runs as a read-only follower of the
leader at that address: it tails the leader's WAL over
GET /v1/repl/stream (snapshot bootstrap when behind the compaction
horizon, live records after), applies every schema change locally, and
serves reads with the same cache and index machinery. Schema writes are
refused with 421 and an x-ipe-leader header; GET /readyz answers 503
with the current lag until the replica has caught up. Combine with
--data-dir to persist the applied stream so a restarted follower resumes
from its last applied sequence number instead of re-bootstrapping.

`serve` traces requests: --trace-sample N records a span tree for 1 in N
requests (default 1 = every request, 0 = off); traces land in an
in-memory flight recorder (--flight-capacity, default 256) browsable at
GET /v1/debug/requests[/:trace_id]. Requests at or past --slow-ms
(default 500, 0 = off) are force-retained. --access-log prints one JSON
line per request to stderr. GET /metrics?format=prometheus serves the
metrics in Prometheus text format.

--index controls the schema closure index. `serve` defaults to `on`:
every PUT kicks off a background build (requests run unindexed until it
lands), and with --data-dir the built index is persisted as a sidecar so
a restart skips the rebuild. `lazy` defers per-name goal tables to first
use; `off` disables indexing. One-shot `complete` defaults to `off`;
pass --index on to see index pruning in --trace/--report output.

`query` disambiguates an incomplete expression at --e and evaluates the
admitted completions against a database instance, merging the results
into provenance-annotated answers: `certain` answers are produced by
every completion, `possible` answers by at least one. The default
university fixture uses its handcrafted instance; `--objects N` /
`--links N` (or any other schema) switch to a synthetic instance seeded
by --seed. --deadline-ms bounds search plus evaluation together
(default 2000, 0 = unlimited).

`batch` reads one path expression per line from FILE (`-` for stdin;
blank lines and `#` comments are skipped) and completes them in parallel
on --threads workers (default 4). --deadline-ms bounds each item's
wall-clock search (default 2000, 0 = unlimited); an item that trips its
deadline reports `deadline exceeded` without stalling the rest.

fixtures: university (default), assembly";

/// Parsed common options: schema source + positional arguments.
struct Opts {
    schema: Schema,
    e: usize,
    exclude: Vec<String>,
    inverses: bool,
    seed: u64,
    classes: usize,
    trace: bool,
    report: Option<String>,
    addr: String,
    reactors: usize,
    queue_depth: usize,
    timeout_ms: u64,
    cache_capacity: usize,
    cache_shards: usize,
    /// `--cache-bytes N` for `serve`: default byte budget applied to each
    /// tenant's completion-cache partition (0 = unlimited).
    cache_bytes: u64,
    batch_threads: usize,
    threads: usize,
    /// `--objects N` for `query`: synthetic objects per class (`None`
    /// keeps the handcrafted fixture instance where one exists).
    objects: Option<usize>,
    /// `--links N` for `query`: synthetic link attempts per relationship.
    links: Option<usize>,
    /// The fixture the schema came from, `None` under `--schema FILE`.
    fixture_name: Option<String>,
    deadline_ms: u64,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    /// `--index on|off|lazy`; `None` keeps the per-command default
    /// (`serve` indexes eagerly, one-shot commands skip the build).
    index_mode: Option<IndexMode>,
    trace_sample_n: u64,
    slow_ms: u64,
    flight_capacity: usize,
    access_log: bool,
    /// `--follow LEADER` for `serve`: run as a read-only replica tailing
    /// the leader's WAL stream.
    follow: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut schema_file: Option<String> = None;
    let mut fixture = "university".to_owned();
    let mut e = 1usize;
    let mut exclude = Vec::new();
    let mut inverses = false;
    let mut seed = 1994u64;
    let mut classes = 92usize;
    let mut trace = false;
    let mut report = None;
    let service_defaults = ServiceConfig::default();
    let mut addr = service_defaults.addr.clone();
    let mut reactors = service_defaults.reactors;
    let mut queue_depth = service_defaults.queue_depth;
    let mut timeout_ms = service_defaults.request_timeout.as_millis() as u64;
    let mut cache_capacity = service_defaults.cache_capacity;
    let mut cache_shards = service_defaults.cache_shards;
    let mut cache_bytes = service_defaults.cache_bytes;
    let mut batch_threads = service_defaults.batch_threads;
    let mut threads = 4usize;
    let mut objects = None;
    let mut links = None;
    let mut deadline_ms = 2_000u64;
    let mut data_dir = None;
    let mut fsync = service_defaults.fsync;
    let mut snapshot_every = service_defaults.snapshot_every;
    let mut index_mode = None;
    let mut trace_sample_n = service_defaults.trace_sample_n;
    let mut slow_ms = service_defaults.slow_ms;
    let mut flight_capacity = service_defaults.flight_capacity;
    let mut access_log = false;
    let mut follow = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--schema" => schema_file = Some(grab("--schema")?),
            "--fixture" => fixture = grab("--fixture")?,
            "--e" => e = grab("--e")?.parse().map_err(|_| "--e must be a number")?,
            "--exclude" => exclude.push(grab("--exclude")?),
            "--inverses" => inverses = true,
            "--seed" => {
                seed = grab("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be a number")?
            }
            "--classes" => {
                classes = grab("--classes")?
                    .parse()
                    .map_err(|_| "--classes must be a number")?
            }
            "--trace" => trace = true,
            "--report" => report = Some(grab("--report")?),
            "--addr" => addr = grab("--addr")?,
            // --workers is the pre-reactor spelling, kept as an alias.
            "--reactors" | "--workers" => {
                reactors = grab(a)?
                    .parse()
                    .map_err(|_| format!("{a} must be a number"))?
            }
            "--queue-depth" => {
                queue_depth = grab("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be a number")?
            }
            "--timeout-ms" => {
                timeout_ms = grab("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be a number")?
            }
            "--cache-capacity" => {
                cache_capacity = grab("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be a number")?
            }
            "--cache-shards" => {
                cache_shards = grab("--cache-shards")?
                    .parse()
                    .map_err(|_| "--cache-shards must be a number")?
            }
            "--cache-bytes" => {
                cache_bytes = grab("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes must be a number")?
            }
            "--batch-threads" => {
                batch_threads = grab("--batch-threads")?
                    .parse()
                    .map_err(|_| "--batch-threads must be a number")?
            }
            "--threads" => {
                threads = grab("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a number")?
            }
            "--objects" => {
                objects = Some(
                    grab("--objects")?
                        .parse()
                        .map_err(|_| "--objects must be a number")?,
                )
            }
            "--links" => {
                links = Some(
                    grab("--links")?
                        .parse()
                        .map_err(|_| "--links must be a number")?,
                )
            }
            "--deadline-ms" => {
                deadline_ms = grab("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be a number")?
            }
            "--data-dir" => data_dir = Some(grab("--data-dir")?),
            "--index" => {
                let v = grab("--index")?;
                index_mode = Some(
                    IndexMode::parse(&v)
                        .ok_or_else(|| format!("--index must be on|off|lazy, got `{v}`"))?,
                );
            }
            "--fsync" => fsync = FsyncPolicy::parse(&grab("--fsync")?)?,
            "--snapshot-every" => {
                snapshot_every = grab("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every must be a number")?
            }
            "--trace-sample" => {
                trace_sample_n = grab("--trace-sample")?
                    .parse()
                    .map_err(|_| "--trace-sample must be a number")?
            }
            "--slow-ms" => {
                slow_ms = grab("--slow-ms")?
                    .parse()
                    .map_err(|_| "--slow-ms must be a number")?
            }
            "--flight-capacity" => {
                flight_capacity = grab("--flight-capacity")?
                    .parse()
                    .map_err(|_| "--flight-capacity must be a number")?
            }
            "--access-log" => access_log = true,
            "--follow" => follow = Some(grab("--follow")?),
            other => positional.push(other.to_owned()),
        }
    }
    let fixture_name = schema_file.is_none().then(|| fixture.clone());
    let schema = match schema_file {
        Some(path) => {
            let json =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Schema::from_json(&json).map_err(|e| e.to_string())?
        }
        None => match fixture.as_str() {
            "university" => ipe::schema::fixtures::university(),
            "assembly" => ipe::schema::fixtures::assembly(),
            other => return Err(format!("unknown fixture `{other}`")),
        },
    };
    Ok(Opts {
        schema,
        e,
        exclude,
        inverses,
        seed,
        classes,
        trace,
        report,
        addr,
        reactors,
        queue_depth,
        timeout_ms,
        cache_capacity,
        cache_shards,
        cache_bytes,
        batch_threads,
        threads,
        objects,
        links,
        fixture_name,
        deadline_ms,
        data_dir,
        fsync,
        snapshot_every,
        index_mode,
        trace_sample_n,
        slow_ms,
        flight_capacity,
        access_log,
        follow,
        positional,
    })
}

fn engine_for(opts: &Opts) -> Result<Completer<'_>, String> {
    let mut excluded = Vec::new();
    for name in &opts.exclude {
        let c = opts
            .schema
            .class_named(name)
            .ok_or_else(|| format!("unknown class `{name}` in --exclude"))?;
        excluded.push(c);
    }
    Ok(Completer::with_config(
        &opts.schema,
        CompletionConfig {
            e: opts.e,
            excluded_classes: excluded,
            ..Default::default()
        },
    ))
}

/// Ring-buffer size for `--trace`/`--report` runs: large enough to hold
/// every event of the bundled fixtures and generated schemas; overflow is
/// reported via the trace's `dropped` count rather than silently.
const TRACE_CAPACITY: usize = 65_536;

fn cmd_complete(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let expr = opts
        .positional
        .first()
        .ok_or("missing path expression argument")?;
    let ast = parse_path_expression(expr).map_err(|e| e.to_string())?;
    let mut engine = engine_for(&opts)?;
    // One-shot runs default to unindexed (the build would dwarf a single
    // query); `--index on|lazy` opts in, e.g. to inspect index pruning in
    // the trace or report.
    let index_mode = opts.index_mode.unwrap_or(IndexMode::Off);
    if index_mode != IndexMode::Off {
        let index: SearchIndex =
            std::sync::Arc::new(IndexedSchema::build(&opts.schema, index_mode));
        assert!(engine.attach_index(index), "freshly built index must fit");
    }
    let observing = opts.trace || opts.report.is_some();
    let capacity = if observing { TRACE_CAPACITY } else { 0 };
    let traced = engine
        .complete_traced(&ast, capacity)
        .map_err(|e| e.to_string())?;
    let outcome = &traced.outcome;
    if opts.trace {
        if ipe::obs::disabled() {
            eprintln!("note: this build has the obs-off feature; no events recorded");
        }
        for v in ipe::core::observe::trace_to_views(&opts.schema, &traced.trace) {
            println!(
                "{:>6} {:<18} {:<14} conn {:<3} semlen {}",
                format!("d{}", v.depth),
                v.kind.as_str(),
                v.class,
                v.connector,
                v.semlen
            );
        }
        if traced.trace.dropped() > 0 {
            eprintln!("({} earlier events dropped)", traced.trace.dropped());
        }
    }
    for c in &outcome.completions {
        println!(
            "{}\t[{} semlen {}]",
            c.display(&opts.schema),
            c.label.connector,
            c.label.semlen
        );
    }
    if index_mode == IndexMode::Off {
        eprintln!(
            "({} result(s), {} node explorations)",
            outcome.completions.len(),
            outcome.stats.calls
        );
    } else {
        eprintln!(
            "({} result(s), {} node explorations, index pruned {} unreachable + {} bound-dominated, {} segment(s) rejected outright)",
            outcome.completions.len(),
            outcome.stats.calls,
            outcome.stats.pruned_index_unreachable,
            outcome.stats.pruned_index_bound,
            outcome.stats.index_segment_rejections
        );
    }
    if let Some(path) = &opts.report {
        let report = ipe::core::observe::build_report(&opts.schema, expr, outcome, &traced.trace);
        report
            .write_to(path)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("(report written to {path})");
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let expr = opts
        .positional
        .first()
        .ok_or("missing path expression argument")?;
    let ast = parse_path_expression(expr).map_err(|e| e.to_string())?;
    let engine = engine_for(&opts)?;
    let out = engine.complete(&ast).map_err(|e| e.to_string())?;
    for c in &out {
        println!("{}\n", explain::explain(&opts.schema, c));
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let expr = opts
        .positional
        .first()
        .ok_or("missing path expression argument")?;
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = university_db(&schema);
    let out = db.eval_str(expr).map_err(|e| e.to_string())?;
    let values = out.values();
    if values.is_empty() {
        println!("{} object(s): {:?}", out.len(), out.objects());
    } else {
        for v in values {
            println!("{v}");
        }
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let expr = opts
        .positional
        .first()
        .cloned()
        .ok_or("missing path expression argument")?;
    let mut excluded = Vec::new();
    for name in &opts.exclude {
        let c = opts
            .schema
            .class_named(name)
            .ok_or_else(|| format!("unknown class `{name}` in --exclude"))?;
        excluded.push(c);
    }
    // The bundled university fixture has a handcrafted instance with
    // recognisable answers; any other schema (or an explicit size) gets a
    // deterministic synthetic instance.
    let handcrafted = opts.objects.is_none()
        && opts.links.is_none()
        && opts.fixture_name.as_deref() == Some("university");
    let schema = std::sync::Arc::new(opts.schema);
    let db = if handcrafted {
        university_db(&schema)
    } else {
        ipe::oodb::gendata::populate(
            &schema,
            &ipe::oodb::gendata::DataConfig {
                objects_per_class: opts.objects.unwrap_or(3),
                links_per_rel: opts.links.unwrap_or(4),
                seed: opts.seed,
            },
        )
    };
    let deadline = (opts.deadline_ms > 0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_millis(opts.deadline_ms));
    let qopts = ipe::query::QueryOptions {
        config: CompletionConfig {
            e: opts.e,
            excluded_classes: excluded,
            ..Default::default()
        },
        search_limits: SearchLimits {
            deadline,
            ..Default::default()
        },
        eval_limits: ipe::oodb::EvalLimits {
            deadline,
            ..Default::default()
        },
    };
    let out = ipe::query::query(&db, &expr, &qopts).map_err(|e| e.to_string())?;
    println!(
        "{} completion(s) at e={} over {} object(s) / {} link(s):",
        out.completions.len(),
        opts.e,
        db.object_count(),
        db.link_count()
    );
    for (i, c) in out.completions.iter().enumerate() {
        println!("  [{i}] {}", c.display(&schema));
    }
    println!(
        "{} answer(s): {} certain, {} possible",
        out.answers.len(),
        out.certain,
        out.possible()
    );
    for a in &out.answers {
        println!(
            "  {} {}  via {:?}",
            if a.certain { "certain " } else { "possible" },
            a.answer,
            a.completions
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let gen = generate_schema(&GenConfig {
        classes: opts.classes,
        seed: opts.seed,
        ..GenConfig::default()
    });
    println!("{}", gen.schema.to_json());
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let rendered = dot::to_dot(
        &opts.schema,
        &dot::DotOptions {
            show_inverses: opts.inverses,
            show_attributes: true,
        },
    );
    println!("{rendered}");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    if opts.trace {
        eprintln!("note: --trace applies to per-query commands; serve exposes /metrics instead");
    }
    let config = ServiceConfig {
        addr: opts.addr.clone(),
        reactors: opts.reactors,
        queue_depth: opts.queue_depth,
        request_timeout: std::time::Duration::from_millis(opts.timeout_ms),
        cache_capacity: opts.cache_capacity,
        cache_shards: opts.cache_shards,
        cache_bytes: opts.cache_bytes,
        batch_threads: opts.batch_threads,
        data_dir: opts.data_dir.clone().map(std::path::PathBuf::from),
        fsync: opts.fsync,
        snapshot_every: opts.snapshot_every,
        index_mode: opts.index_mode.unwrap_or(IndexMode::On),
        trace_sample_n: opts.trace_sample_n,
        slow_ms: opts.slow_ms,
        flight_capacity: opts.flight_capacity,
        access_log: opts.access_log,
        follow: opts.follow.clone(),
        ..Default::default()
    };
    let server =
        Server::start(config).map_err(|e| format!("cannot start on {}: {e}", opts.addr))?;
    if let Some(leader) = &opts.follow {
        // A follower's registry is the leader's — seeding `default`
        // locally would fork the replicated history.
        println!("(read-only follower of leader at {leader})");
    } else {
        // A recovered data directory may already hold `default` (possibly
        // a hot-swapped generation); re-inserting would bump its
        // generation and write a WAL record on every restart, so only
        // seed it when absent.
        match server.state().registry.get("default") {
            None => {
                let json = opts.schema.to_json();
                server
                    .register_schema("default", opts.schema, &json)
                    .map_err(|e| format!("cannot persist default schema: {e}"))?;
            }
            Some(entry) => println!(
                "(default schema recovered from data dir at generation {})",
                entry.generation
            ),
        }
    }
    // The address on its own line, so scripts can scrape the ephemeral
    // port (stdout is line-buffered even when piped).
    println!("ipe-service listening on http://{}", server.addr());
    let reactors_desc = if opts.reactors == 0 {
        "one per core".to_owned()
    } else {
        opts.reactors.to_string()
    };
    println!(
        "({} reactor(s), {} connection(s) per reactor, cache capacity {} over {} shard(s), request timeout {}ms)",
        reactors_desc, opts.queue_depth, opts.cache_capacity, opts.cache_shards, opts.timeout_ms
    );
    println!(
        "endpoints: POST /v1/complete  POST /v1/complete/batch  GET /v1/schemas  \
         GET/PUT/DELETE /v1/schemas/:name  GET /healthz  GET /metrics[?format=prometheus]  \
         GET /v1/debug/requests[/:trace_id]  POST /v1/shutdown"
    );
    let state = std::sync::Arc::clone(server.state());
    server.join();
    eprintln!("(server shut down cleanly)");
    if let Some(path) = &opts.report {
        let json = ipe::service::server::metrics_json(&state);
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("(service report written to {path})");
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let file = opts
        .positional
        .first()
        .ok_or("missing batch file argument (one expression per line, `-` for stdin)")?;
    let text = if file == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
    };
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut asts = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        let ast =
            parse_path_expression(line).map_err(|e| format!("line {}: `{line}`: {e}", i + 1))?;
        asts.push(ast);
    }
    if asts.is_empty() {
        return Err("batch file has no expressions".to_owned());
    }
    let engine = engine_for(&opts)?;
    let batch_opts = BatchOptions {
        threads: opts.threads,
        deadline: (opts.deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(opts.deadline_ms)),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let out = complete_batch(&engine, &asts, &batch_opts);
    let wall = started.elapsed();
    let mut ok = 0usize;
    let mut timed_out = 0usize;
    let mut failed = 0usize;
    for item in &out {
        let expr = lines[item.index];
        match &item.result {
            Ok(outcome) => {
                ok += 1;
                for c in &outcome.completions {
                    println!(
                        "{expr}\t{}\t[{} semlen {}]",
                        c.display(&opts.schema),
                        c.label.connector,
                        c.label.semlen
                    );
                }
                if outcome.completions.is_empty() {
                    println!("{expr}\t(no completions)");
                }
            }
            Err(e) => {
                if item.deadline_exceeded() {
                    timed_out += 1;
                } else {
                    failed += 1;
                }
                println!("{expr}\terror: {e}");
            }
        }
    }
    eprintln!(
        "({} expression(s) on {} thread(s) in {:.1}ms: {ok} ok, {timed_out} past deadline, {failed} failed)",
        out.len(),
        opts.threads.max(1),
        wall.as_secs_f64() * 1e3,
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let r = ipe::schema::analysis::analyze(&opts.schema);
    println!("classes:          {}", r.classes);
    println!("user classes:     {}", r.user_classes);
    println!("relationships:    {}", r.relationships);
    for (kind, count) in &r.by_kind {
        println!("  {:<14}  {count}", format!("{kind:?}:"));
    }
    println!("max Isa depth:    {}", r.max_isa_depth);
    println!("max out-degree:   {}", r.max_out_degree);
    println!("distinct names:   {}", r.distinct_names);
    println!("most ambiguous relationship names (the interesting `~` targets):");
    for (name, count) in r.ambiguous_names.iter().take(8) {
        println!("  {name:<16} {count} carriers");
    }
    Ok(())
}
