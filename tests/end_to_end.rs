//! Cross-crate integration: parse → complete → approve → evaluate, on the
//! paper's own examples over the Figure 2 schema.

use ipe::oodb::fixtures::university_db;
use ipe::oodb::Value;
use ipe::prelude::*;

fn texts(schema: &ipe::schema::Schema, out: &[ipe::core::Completion]) -> Vec<String> {
    out.iter().map(|c| c.display(schema).to_string()).collect()
}

#[test]
fn section_2_2_2_flagship_example() {
    let schema = ipe::schema::fixtures::university();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("ta~name").unwrap())
        .unwrap();
    let t = texts(&schema, &out);
    assert_eq!(t.len(), 2);
    assert!(t.contains(&"ta@>grad@>student@>person.name".to_string()));
    assert!(t.contains(&"ta@>instructor@>teacher@>employee@>person.name".to_string()));
}

#[test]
fn completion_then_evaluation_yields_ta_names() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = university_db(&schema);
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("ta~name").unwrap())
        .unwrap();
    // Both optimal completions evaluate to the same answer: Alice.
    for c in &out {
        let result = db.eval(&c.to_ast(&schema)).unwrap();
        assert_eq!(result.values(), vec![Value::text("Alice")]);
    }
}

#[test]
fn intro_example_courses_of_the_arts_department() {
    // The introduction's motivating question: "What are the courses of the
    // Arts department?" — the plausible readings returned by the engine are
    // the faculty-teaching and student-taking ones, which tie.
    let schema = ipe::schema::fixtures::university();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("department~teach").unwrap())
        .unwrap();
    let t = texts(&schema, &out);
    assert!(
        t.contains(&"department$>professor@>teacher.teach".to_string()),
        "{t:?}"
    );
}

#[test]
fn every_returned_completion_is_parseable_and_walkable() {
    let schema = ipe::schema::fixtures::university();
    let engine = Completer::new(&schema);
    for query in [
        "ta~name",
        "department~take",
        "university~ssn",
        "course~name",
    ] {
        let out = engine
            .complete(&parse_path_expression(query).unwrap())
            .unwrap();
        for c in &out {
            let rendered = c.display(&schema).to_string();
            let reparsed = parse_path_expression(&rendered).unwrap();
            assert!(reparsed.is_complete());
            // Walking the complete expression through the engine reproduces
            // the same path and label.
            let validated = engine.complete(&reparsed).unwrap();
            assert_eq!(validated.len(), 1);
            assert_eq!(validated[0].edges, c.edges);
            assert_eq!(validated[0].label, c.label);
        }
    }
}

#[test]
fn assembly_schema_shares_subparts() {
    // Section 3.3.1's part-whole examples: engine and chassis share the
    // screw. A completion from engine to a chassis-side attribute must pass
    // through the shared subpart, with a Shares-SubParts-With label.
    let schema = ipe::schema::fixtures::assembly();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("engine~chassis").unwrap())
        .unwrap();
    assert!(!out.is_empty());
    let best = &out[0];
    assert_eq!(best.display(&schema).to_string(), "engine$>screw<$chassis");
    assert_eq!(
        best.label.connector,
        ipe::algebra::moose::Connector::SHARES_SUB
    );
}

#[test]
fn multi_tilde_end_to_end() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = university_db(&schema);
    let engine = Completer::new(&schema);
    // Any path reaching a `take` relationship, then any continuation to a
    // `name`: e.g. names of courses taken.
    let out = engine
        .complete(&parse_path_expression("department~take~name").unwrap())
        .unwrap();
    assert!(!out.is_empty());
    let result = db.eval(&out[0].to_ast(&schema)).unwrap();
    assert!(!result.is_empty());
}

#[test]
fn excluded_class_changes_the_answer_set() {
    let schema = ipe::schema::fixtures::university();
    let person = schema.class_named("person").unwrap();
    let base = Completer::new(&schema);
    let restricted = Completer::with_config(
        &schema,
        CompletionConfig {
            excluded_classes: vec![person],
            ..Default::default()
        },
    );
    let ast = parse_path_expression("ta~name").unwrap();
    let base_t = texts(&schema, &base.complete(&ast).unwrap());
    let restr_t = texts(&schema, &restricted.complete(&ast).unwrap());
    assert_ne!(base_t, restr_t);
    assert!(restr_t.iter().all(|t| !t.contains("person")));
}
