//! CLI argument-plumbing regression tests: global flags (`--trace`,
//! `--report`) must compose with explicit subcommands — in particular the
//! `serve` subcommand — instead of forcing an implicit `complete`.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

fn ipe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ipe"))
}

/// `ipe --trace serve --addr <invalid>` must dispatch to `serve` (and so
/// fail on the bind), not treat "serve" as a path expression.
#[test]
fn global_flags_before_serve_dispatch_to_serve() {
    let out = ipe()
        .args(["--trace", "serve", "--addr", "999.999.999.999:1"])
        .output()
        .expect("run ipe");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot start on"),
        "expected the serve bind error, got: {stderr}"
    );
}

/// The implicit-complete shorthand keeps working with leading flags.
#[test]
fn implicit_complete_with_leading_flags_still_works() {
    let out = ipe()
        .args(["--e", "1", "ta~name"])
        .output()
        .expect("run ipe");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ta@>grad@>student@>person.name"),
        "{stdout}"
    );
}

/// An explicit subcommand placed *after* global flags is still found.
#[test]
fn flags_before_explicit_complete() {
    let out = ipe()
        .args(["--e", "2", "complete", "ta~name"])
        .output()
        .expect("run ipe");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A bare unknown word is still an unknown-command error, not a search.
#[test]
fn unknown_command_is_rejected() {
    let out = ipe().arg("frobnicate").output().expect("run ipe");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

/// Full compose check: `ipe --report FILE serve` starts the server, the
/// printed ephemeral address is reachable, `ta~name` returns the Figure-2
/// answers over HTTP, and a clean shutdown writes the metrics report.
#[test]
fn report_flag_composes_with_serve() {
    let dir = std::env::temp_dir().join(format!("ipe-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("service_report.json");
    let mut child = ipe()
        .args([
            "--report",
            report.to_str().unwrap(),
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ipe serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server prints its address")
        .expect("readable stdout");
    let addr = first
        .rsplit("http://")
        .next()
        .expect("address after http://")
        .trim()
        .to_owned();
    assert!(addr.contains(':'), "unexpected announce line: {first}");

    let mut client = ipe::service::Client::new(addr);
    let (status, body) = client
        .request("POST", "/v1/complete", r#"{"query": "ta~name"}"#)
        .expect("server reachable");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("ta@>grad@>student@>person.name"), "{body}");
    let (status, _) = client.request("POST", "/v1/shutdown", "").unwrap();
    assert_eq!(status, 200);

    let status = child.wait().expect("server exits after shutdown");
    assert!(status.success());
    let report_text = std::fs::read_to_string(&report).expect("report written on shutdown");
    assert!(report_text.contains("\"service\""), "{report_text}");
    std::fs::remove_dir_all(&dir).ok();
}
