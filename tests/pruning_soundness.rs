//! Soundness of the engine's pruning modes against the exhaustive oracle,
//! over randomized CUPID-style schemas and query populations.
//!
//! * `Safe` (the default) must return **exactly** the oracle's optimal set.
//! * `Paper` (Algorithm 2 verbatim, caution sets included) is expected to
//!   match almost always; its rare misses are the connector-level caution
//!   set's blind spots discussed in DESIGN.md, and we assert they stay
//!   rare rather than that they never happen.

use ipe::core::{exhaustive, Completer, CompletionConfig, Pruning};
use ipe::gen::{generate_schema, GenConfig};
use ipe::parser::parse_path_expression;
use ipe::schema::Schema;

fn optimal_texts(
    schema: &Schema,
    root_name: &str,
    target: &str,
    cfg: &CompletionConfig,
) -> Vec<String> {
    let root = schema.class_named(root_name).unwrap();
    let mut t: Vec<String> = exhaustive::optimal_via_enumeration(schema, root, target, cfg)
        .unwrap()
        .completions
        .iter()
        .map(|c| c.display(schema).to_string())
        .collect();
    t.sort();
    t
}

fn engine_texts(
    schema: &Schema,
    root_name: &str,
    target: &str,
    cfg: CompletionConfig,
) -> Vec<String> {
    let engine = Completer::with_config(schema, cfg);
    let ast = parse_path_expression(&format!("{root_name}~{target}")).unwrap();
    let mut t: Vec<String> = engine
        .complete(&ast)
        .unwrap()
        .iter()
        .map(|c| c.display(schema).to_string())
        .collect();
    t.sort();
    t
}

/// Query population: every (class, target-name) pair drawn from a sample of
/// classes and the shared attribute pool.
fn query_population(schema: &Schema) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let targets = ["name", "value", "rate", "depth", "temp"];
    for class in schema.classes().step_by(7) {
        if schema.is_primitive(class) {
            continue;
        }
        let root = schema.class_name(class).to_owned();
        for t in targets {
            if schema
                .symbol(t)
                .is_some_and(|s| !schema.rels_named(s).is_empty())
            {
                out.push((root.clone(), t.to_owned()));
            }
        }
    }
    out
}

fn small_gen(seed: u64) -> ipe::gen::GeneratedSchema {
    generate_schema(&GenConfig {
        classes: 24,
        tree_roots: 2,
        assoc_edges: 6,
        hubs: 1,
        hub_degree: 4,
        seed,
        ..GenConfig::default()
    })
}

#[test]
fn safe_mode_matches_oracle_exactly() {
    for seed in 0..6 {
        let gen = small_gen(seed);
        for e in [1usize, 2, 3] {
            let cfg = CompletionConfig {
                e,
                max_depth: 14,
                ..Default::default()
            };
            for (root, target) in query_population(&gen.schema) {
                let want = optimal_texts(&gen.schema, &root, &target, &cfg);
                let got = engine_texts(&gen.schema, &root, &target, cfg.clone());
                assert_eq!(got, want, "seed={seed} e={e} {root}~{target}");
            }
        }
    }
}

#[test]
fn none_mode_matches_oracle_exactly() {
    let gen = small_gen(9);
    let cfg = CompletionConfig {
        pruning: Pruning::None,
        max_depth: 14,
        ..Default::default()
    };
    for (root, target) in query_population(&gen.schema) {
        let want = optimal_texts(&gen.schema, &root, &target, &cfg);
        let got = engine_texts(&gen.schema, &root, &target, cfg.clone());
        assert_eq!(got, want, "{root}~{target}");
    }
}

#[test]
fn paper_mode_is_rarely_wrong() {
    let mut total = 0usize;
    let mut agree = 0usize;
    for seed in 0..6 {
        let gen = small_gen(seed + 100);
        let cfg = CompletionConfig {
            pruning: Pruning::Paper,
            max_depth: 14,
            ..Default::default()
        };
        for (root, target) in query_population(&gen.schema) {
            let want = optimal_texts(&gen.schema, &root, &target, &cfg);
            let got = engine_texts(&gen.schema, &root, &target, cfg.clone());
            total += 1;
            if got == want {
                agree += 1;
            }
        }
    }
    assert!(total > 50, "population too small ({total})");
    let ratio = agree as f64 / total as f64;
    // The residual divergence is the documented caution-set blind spot:
    // connector-level caution cannot see semantic-length junction effects,
    // so a few prefixes are pruned whose extensions would have tied. The
    // rate is schema-dependent; on these randomized schemas it stays under
    // ~10%.
    assert!(
        ratio >= 0.85,
        "Paper-mode pruning diverged from the oracle on {} of {} queries",
        total - agree,
        total
    );
}

/// The caution-free ablation must never beat full Paper mode against the
/// oracle: removing caution sets can only lose answers.
#[test]
fn no_caution_is_no_better_than_paper() {
    let mut paper_hits = 0usize;
    let mut ablated_hits = 0usize;
    for seed in 0..4 {
        let gen = small_gen(seed + 300);
        for (root, target) in query_population(&gen.schema) {
            let oracle_cfg = CompletionConfig {
                max_depth: 14,
                ..Default::default()
            };
            let want = optimal_texts(&gen.schema, &root, &target, &oracle_cfg);
            for (mode, hits) in [
                (Pruning::Paper, &mut paper_hits),
                (Pruning::PaperNoCaution, &mut ablated_hits),
            ] {
                let got = engine_texts(
                    &gen.schema,
                    &root,
                    &target,
                    CompletionConfig {
                        pruning: mode,
                        max_depth: 14,
                        ..Default::default()
                    },
                );
                if got == want {
                    *hits += 1;
                }
            }
        }
    }
    assert!(
        paper_hits >= ablated_hits,
        "caution sets lost accuracy: paper {paper_hits} vs ablated {ablated_hits}"
    );
}

#[test]
fn safe_never_returns_fewer_results_than_paper_misses() {
    // Sanity relation: Paper-mode output labels can never be *better* than
    // Safe-mode output labels (Safe is exact).
    use ipe::algebra::moose::rank;
    let gen = small_gen(77);
    for (root, target) in query_population(&gen.schema) {
        let safe_engine = Completer::new(&gen.schema);
        let paper_engine = Completer::with_config(
            &gen.schema,
            CompletionConfig {
                pruning: Pruning::Paper,
                ..Default::default()
            },
        );
        let ast = parse_path_expression(&format!("{root}~{target}")).unwrap();
        let safe = safe_engine.complete(&ast).unwrap();
        let paper = paper_engine.complete(&ast).unwrap();
        if let (Some(s), Some(p)) = (safe.first(), paper.first()) {
            let sk = (rank(s.label.connector), s.label.semlen);
            let pk = (rank(p.label.connector), p.label.semlen);
            assert!(sk <= pk, "{root}~{target}: safe {sk:?} vs paper {pk:?}");
        }
    }
}
