//! Property-based tests over the whole stack.

use ipe::algebra::moose::{semantic_length_of_kinds, Label, MooseAlgebra, RelKind};
use ipe::algebra::properties;
use ipe::core::Completer;
use ipe::gen::{generate_schema, GenConfig};
use ipe::parser::parse_path_expression;
use ipe::schema::Schema;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = RelKind> {
    prop_oneof![
        Just(RelKind::Isa),
        Just(RelKind::MayBe),
        Just(RelKind::HasPart),
        Just(RelKind::IsPartOf),
        Just(RelKind::Assoc),
    ]
}

proptest! {
    /// The compositional semantic length equals the from-scratch
    /// restructuring definition, for any kind sequence and any split.
    #[test]
    fn semlen_compositional_equals_reference(
        kinds in proptest::collection::vec(arb_kind(), 0..24),
        split in 0usize..25,
    ) {
        let whole = Label::of_kinds(&kinds);
        prop_assert_eq!(whole.semlen, semantic_length_of_kinds(&kinds));
        let s = split.min(kinds.len());
        let (a, b) = kinds.split_at(s);
        prop_assert_eq!(Label::of_kinds(a).con(&Label::of_kinds(b)), whole);
    }

    /// CON is associative on arbitrary labels (property 1).
    #[test]
    fn con_associative(
        a in proptest::collection::vec(arb_kind(), 0..10),
        b in proptest::collection::vec(arb_kind(), 0..10),
        c in proptest::collection::vec(arb_kind(), 0..10),
    ) {
        let (la, lb, lc) = (Label::of_kinds(&a), Label::of_kinds(&b), Label::of_kinds(&c));
        prop_assert!(properties::con_associative(&MooseAlgebra, &la, &lb, &lc));
    }

    /// Monotonicity (property 7): extending never improves a label.
    #[test]
    fn monotonic(
        a in proptest::collection::vec(arb_kind(), 0..12),
        b in proptest::collection::vec(arb_kind(), 0..12),
    ) {
        let (la, lb) = (Label::of_kinds(&a), Label::of_kinds(&b));
        prop_assert!(properties::monotonic(&MooseAlgebra, &la, &lb));
    }

    /// AGG is 'associative' (property 2) over random label populations.
    #[test]
    fn agg_associative(
        s1 in proptest::collection::vec(proptest::collection::vec(arb_kind(), 0..6), 0..4),
        s2 in proptest::collection::vec(proptest::collection::vec(arb_kind(), 0..6), 0..4),
        s3 in proptest::collection::vec(proptest::collection::vec(arb_kind(), 0..6), 0..4),
    ) {
        let to_labels = |v: Vec<Vec<RelKind>>| -> Vec<Label> {
            v.iter().map(|k| Label::of_kinds(k)).collect()
        };
        prop_assert!(properties::agg_associative(
            &MooseAlgebra,
            &to_labels(s1),
            &to_labels(s2),
            &to_labels(s3),
        ));
    }

    /// Parser round trip: display of a parsed expression re-parses to the
    /// same AST.
    #[test]
    fn parser_round_trip(
        root in "[a-z][a-z0-9_]{0,8}",
        steps in proptest::collection::vec(
            ("[a-z][a-z0-9_-]{0,8}", 0usize..6usize), 0..6),
    ) {
        let connectors = ["@>", "<@", "$>", "<$", ".", "~"];
        let mut text = root;
        for (name, c) in &steps {
            text.push_str(connectors[*c % connectors.len()]);
            text.push_str(name);
        }
        let ast = parse_path_expression(&text).unwrap();
        let printed = ast.to_string();
        prop_assert_eq!(&printed, &text);
        prop_assert_eq!(parse_path_expression(&printed).unwrap(), ast);
    }

    /// Display is a normalization fixpoint across whitespace variants:
    /// however the expression is spaced, one parse+display reaches the
    /// canonical form and stays there. The service's completion cache
    /// keys on that form, so this is the property that makes `ta ~ name`
    /// and `ta~name` share a cache entry.
    #[test]
    fn display_normalization_fixpoint(
        root in "[a-z][a-z0-9_]{0,8}",
        steps in proptest::collection::vec(
            ("[a-z][a-z0-9_-]{0,8}", 0usize..6usize, 0usize..4usize, 0usize..4usize), 0..6),
        lead in 0usize..3,
        trail in 0usize..3,
    ) {
        let connectors = ["@>", "<@", "$>", "<$", ".", "~"];
        let pads = ["", " ", "\t", "  "];
        let mut text = " ".repeat(lead);
        text.push_str(&root);
        for (name, c, before, after) in &steps {
            text.push_str(pads[*before]);
            text.push_str(connectors[*c % connectors.len()]);
            text.push_str(pads[*after]);
            text.push_str(name);
        }
        text.push_str(&" ".repeat(trail));
        let ast = parse_path_expression(&text).unwrap();
        let normalized = ast.to_string();
        prop_assert!(
            !normalized.contains(char::is_whitespace),
            "normalized form keeps whitespace: {normalized:?}"
        );
        let reparsed = parse_path_expression(&normalized).unwrap();
        prop_assert_eq!(&reparsed, &ast, "normalization changed the AST");
        prop_assert_eq!(reparsed.to_string(), normalized);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated schemas serialize and deserialize losslessly.
    #[test]
    fn schema_serde_round_trip(seed in 0u64..500) {
        let gen = generate_schema(&GenConfig {
            classes: 16,
            tree_roots: 1,
            assoc_edges: 4,
            hubs: 1,
            hub_degree: 3,
            seed,
            ..GenConfig::default()
        });
        let json = gen.schema.to_json();
        let back = Schema::from_json(&json).unwrap();
        prop_assert_eq!(back.class_count(), gen.schema.class_count());
        prop_assert_eq!(back.rel_count(), gen.schema.rel_count());
        prop_assert_eq!(back.to_json(), json);
    }

    /// Engine output invariants on random schemas: every completion is
    /// acyclic, consistent (ends with the target name), has a correct
    /// incremental label, and the result set is AGG*-closed.
    #[test]
    fn engine_output_invariants(seed in 0u64..300) {
        let gen = generate_schema(&GenConfig {
            classes: 20,
            tree_roots: 2,
            assoc_edges: 5,
            hubs: 1,
            hub_degree: 3,
            seed,
            ..GenConfig::default()
        });
        let schema = &gen.schema;
        let engine = Completer::new(schema);
        for target in ["name", "value", "rate"] {
            let Some(sym) = schema.symbol(target) else { continue };
            if schema.rels_named(sym).is_empty() {
                continue;
            }
            for class in schema.classes().step_by(5) {
                if schema.is_primitive(class) {
                    continue;
                }
                let expr = format!("{}~{}", schema.class_name(class), target);
                let out = engine.complete(&parse_path_expression(&expr).unwrap()).unwrap();
                for c in &out {
                    // Consistency: right root, right final name.
                    prop_assert_eq!(c.root, class);
                    prop_assert_eq!(
                        schema.rel_name(*c.edges.last().unwrap()),
                        target
                    );
                    // Acyclicity.
                    let classes = c.classes(schema);
                    let mut d = classes.clone();
                    d.sort();
                    d.dedup();
                    prop_assert_eq!(d.len(), classes.len());
                    // Label integrity.
                    prop_assert_eq!(c.label, c.recompute_label(schema));
                }
                // AGG*-closure: at E=1 all results share the optimal rank
                // and semantic length, so no result dominates another.
                use ipe::algebra::moose::dominates;
                for x in &out {
                    for y in &out {
                        prop_assert!(
                            !dominates(&x.label, &y.label),
                            "{}: {:?} dominates {:?}",
                            expr,
                            x.label,
                            y.label
                        );
                    }
                }
            }
        }
    }
}
