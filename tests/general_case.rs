//! The general case of Section 7 / reference [17]: arbitrary numbers of
//! `~` connectors, interleaved with explicit steps, end to end.

use ipe::core::{Completer, CompletionConfig};
use ipe::parser::parse_path_expression;
use ipe::schema::fixtures;

fn texts(schema: &ipe::schema::Schema, out: &[ipe::core::Completion]) -> Vec<String> {
    out.iter().map(|c| c.display(schema).to_string()).collect()
}

#[test]
fn leading_explicit_then_tilde_then_explicit() {
    let schema = fixtures::university();
    let engine = Completer::new(&schema);
    // From the university: descend to a department somehow, then its name.
    let out = engine
        .complete(&parse_path_expression("university~department.name").unwrap())
        .unwrap();
    let t = texts(&schema, &out);
    assert!(
        t.contains(&"university$>department.name".to_string()),
        "{t:?}"
    );
}

#[test]
fn three_tildes() {
    let schema = fixtures::university();
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(2));
    let out = engine
        .complete(&parse_path_expression("university~professor~teach~name").unwrap())
        .unwrap();
    assert!(!out.is_empty());
    for c in &out {
        let names: Vec<&str> = c.edges.iter().map(|&e| schema.rel_name(e)).collect();
        // The anchors appear in order.
        let p = names.iter().position(|&n| n == "professor").unwrap();
        let te = names.iter().rposition(|&n| n == "teach").unwrap();
        let na = names.len() - 1;
        assert!(p < te && te < na);
        assert_eq!(names[na], "name");
    }
}

#[test]
fn tilde_segments_respect_global_labels() {
    // The composed label of a multi-segment completion must equal the
    // label recomputed from scratch over the whole path.
    let schema = fixtures::university();
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(3));
    let out = engine
        .complete(&parse_path_expression("ta~person~name").unwrap())
        .unwrap();
    assert!(!out.is_empty());
    for c in &out {
        assert_eq!(c.label, c.recompute_label(&schema));
    }
}

#[test]
fn unsatisfiable_interleaving_returns_empty() {
    let schema = fixtures::university();
    let engine = Completer::new(&schema);
    // `ssn` exists only on person; after reaching a course there is no
    // (acyclic) way to end at ssn through `take` backwards... actually
    // there is, via course.student@>person.ssn — so use a genuinely
    // unsatisfiable one: reach `university` FROM a course's name attribute
    // (primitive classes have no outgoing edges).
    let out = engine
        .complete(&parse_path_expression("course~name~university").unwrap())
        .unwrap();
    assert!(out.is_empty());
}

#[test]
fn mid_tilde_errors_surface_cleanly() {
    let schema = fixtures::university();
    let engine = Completer::new(&schema);
    // Explicit step after the tilde that names nothing.
    let err = engine
        .complete(&parse_path_expression("ta~name.bogus").unwrap())
        .unwrap_err();
    assert!(matches!(
        err,
        ipe::core::CompleteError::UnknownTargetName(_)
    ));
}
