//! The full Figure 1 loop as a library workflow: query → completion →
//! user approval (simulated) → evaluation → feedback → improved
//! completions.

use ipe::core::explain;
use ipe::core::feedback::{FeedbackStore, SuggestionPolicy, Verdict};
use ipe::oodb::gendata::{populate, DataConfig};
use ipe::prelude::*;

#[test]
fn approval_loop_with_learning() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let db = populate(&schema, &DataConfig::default());
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(2));
    let mut store = FeedbackStore::new(&schema);

    // Session 1: the user asks several queries; they reject anything that
    // routes through `employee` (say the deployment hides staff data).
    let employee = schema.class_named("employee").unwrap();
    for query in ["ta~name", "ta~ssn", "staff~name", "professor~name"] {
        let out = engine
            .complete(&parse_path_expression(query).unwrap())
            .unwrap();
        for c in &out {
            let verdict = if c.classes(&schema).contains(&employee) {
                Verdict::Rejected
            } else {
                Verdict::Approved
            };
            store.record(&schema, c, verdict);

            // Approved completions are evaluated (and must evaluate
            // cleanly over a populated database).
            if verdict == Verdict::Approved {
                let result = db.eval(&c.to_ast(&schema));
                assert!(result.is_ok(), "{}", c.display(&schema));
            }
        }
    }

    // The learner converges on excluding `employee`.
    let policy = SuggestionPolicy {
        min_rejections: 2,
        max_approval_share: 0.2,
    };
    let suggested = store.suggest_exclusions(&policy);
    assert!(
        suggested.contains(&employee),
        "evidence: {:?}",
        store.evidence(employee)
    );

    // Session 2: with the learned exclusions, `ta~name` now returns only
    // the grad-side reading — no further rejections needed.
    let adapted = Completer::with_config(
        &schema,
        CompletionConfig {
            excluded_classes: suggested,
            e: 2,
            ..Default::default()
        },
    );
    let out = adapted
        .complete(&parse_path_expression("ta~name").unwrap())
        .unwrap();
    assert!(!out.is_empty());
    for c in &out {
        assert!(!c.classes(&schema).contains(&employee));
    }
}

#[test]
fn explanations_render_for_every_candidate() {
    let schema = std::sync::Arc::new(ipe::schema::fixtures::university());
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(3));
    for query in ["ta~name", "department~take", "university~ssn"] {
        let out = engine
            .complete(&parse_path_expression(query).unwrap())
            .unwrap();
        for c in &out {
            let ex = explain::explain(&schema, c);
            let text = ex.to_string();
            assert!(text.contains("final label"));
            assert_eq!(ex.steps.len(), c.len());
            assert_eq!(ex.label, c.label, "explanation label must agree");
        }
        // The first candidate is at least as good as every other: compare
        // must justify it (or declare a tie).
        if let Some(first) = out.first() {
            for other in out.iter().skip(1) {
                assert!(
                    explain::compare(&schema, first, other).is_some(),
                    "{} vs {}",
                    first.display(&schema),
                    other.display(&schema)
                );
            }
        }
    }
}
