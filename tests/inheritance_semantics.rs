//! Section 4.3: the completion engine must reproduce the inheritance
//! semantics every OO system implements — except for genuine multiple
//! inheritance conflicts, where the paper's position is that the user
//! chooses.

use ipe::core::{Completer, CompletionConfig};
use ipe::parser::parse_path_expression;
use ipe::schema::{Primitive, RelKind, Schema, SchemaBuilder};

/// Figure 4's shape: `bottom @> mid @> top`, with a relationship named `n`
/// on both `mid` and `top`.
fn shadowed() -> Schema {
    let mut b = SchemaBuilder::new();
    let top = b.class("top").unwrap();
    let mid = b.class("mid").unwrap();
    let bottom = b.class("bottom").unwrap();
    let data = b.class("data").unwrap();
    b.isa(mid, top).unwrap();
    b.isa(bottom, mid).unwrap();
    b.rel_named(RelKind::Assoc, mid, data, "n", "n_mid_inv")
        .unwrap();
    b.rel_named(RelKind::Assoc, top, data, "n", "n_top_inv")
        .unwrap();
    b.build().unwrap()
}

#[test]
fn nearest_definition_wins() {
    let schema = shadowed();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("bottom~n").unwrap())
        .unwrap();
    let texts: Vec<String> = out.iter().map(|c| c.display(&schema).to_string()).collect();
    assert_eq!(texts, vec!["bottom@>mid.n".to_string()], "{texts:?}");
}

#[test]
fn criterion_can_be_disabled() {
    let schema = shadowed();
    let engine = Completer::with_config(
        &schema,
        CompletionConfig {
            inheritance_criterion: false,
            ..Default::default()
        },
    );
    let out = engine
        .complete(&parse_path_expression("bottom~n").unwrap())
        .unwrap();
    // Both definitions have label [., 1] (the Isa prefix is free), so
    // without preemption both are returned and the user resolves.
    assert_eq!(out.len(), 2);
}

/// Diamond inheritance with `n` defined on both branches: no chain is a
/// prefix of the other, so the criterion does not apply and the user must
/// choose — "in our case, the user must be involved in the loop".
#[test]
fn multiple_inheritance_returns_both() {
    let mut b = SchemaBuilder::new();
    let left = b.class("left").unwrap();
    let right = b.class("right").unwrap();
    let bottom = b.class("bottom").unwrap();
    let data = b.class("data").unwrap();
    b.isa(bottom, left).unwrap();
    b.isa(bottom, right).unwrap();
    b.rel_named(RelKind::Assoc, left, data, "n", "nl").unwrap();
    b.rel_named(RelKind::Assoc, right, data, "n", "nr").unwrap();
    let schema = b.build().unwrap();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("bottom~n").unwrap())
        .unwrap();
    let texts: Vec<String> = out.iter().map(|c| c.display(&schema).to_string()).collect();
    assert_eq!(out.len(), 2, "{texts:?}");
    assert!(texts.contains(&"bottom@>left.n".to_string()));
    assert!(texts.contains(&"bottom@>right.n".to_string()));
}

/// Preemption interacts with AGG*: even at large E the shadowed completion
/// stays suppressed.
#[test]
fn preemption_survives_large_e() {
    let schema = shadowed();
    let engine = Completer::with_config(&schema, CompletionConfig::with_e(5));
    let out = engine
        .complete(&parse_path_expression("bottom~n").unwrap())
        .unwrap();
    let texts: Vec<String> = out.iter().map(|c| c.display(&schema).to_string()).collect();
    assert!(
        !texts.contains(&"bottom@>mid@>top.n".to_string()),
        "{texts:?}"
    );
}

/// A refinement on the subclass (same name, different target) also
/// shadows: the refined relationship is the one completed.
#[test]
fn refinement_shadows_superclass_relationship() {
    let mut b = SchemaBuilder::new();
    let vehicle = b.class("vehicle").unwrap();
    let car = b.class("car").unwrap();
    let part = b.class("part").unwrap();
    let carpart = b.class("carpart").unwrap();
    b.isa(car, vehicle).unwrap();
    b.isa(carpart, part).unwrap();
    b.rel_named(RelKind::Assoc, vehicle, part, "component", "of_v")
        .unwrap();
    b.rel_named(RelKind::Assoc, car, carpart, "component", "of_c")
        .unwrap();
    b.attr(part, "weight", Primitive::Real).unwrap();
    let schema = b.build().unwrap();
    let engine = Completer::new(&schema);
    let out = engine
        .complete(&parse_path_expression("car~component").unwrap())
        .unwrap();
    let texts: Vec<String> = out.iter().map(|c| c.display(&schema).to_string()).collect();
    assert_eq!(texts, vec!["car.component".to_string()], "{texts:?}");
}
